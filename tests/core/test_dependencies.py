"""Inter-block dependency identification and the ten categories (§3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CATEGORY_NAMES,
    UnitLocator,
    analyze_dependencies,
    classify_pair_updates,
    partition_factor,
)
from repro.core.blocks import BlockKind
from repro.symbolic import enumerate_updates, symbolic_cholesky

from ..conftest import random_connected_graph


def _setup(n=36, extra=60, seed=11, grain=4, min_width=2):
    g = random_connected_graph(n, extra, seed)
    pattern = symbolic_cholesky(g).pattern
    partition = partition_factor(pattern, grain=grain, min_width=min_width)
    updates = enumerate_updates(pattern)
    return pattern, partition, updates


class TestClassification:
    def test_every_update_classified(self):
        _, partition, updates = _setup()
        cats = classify_pair_updates(partition, updates)
        assert ((cats >= 0) & (cats <= 10)).all()

    def test_internal_means_same_unit(self):
        _, partition, updates = _setup()
        cats = classify_pair_updates(partition, updates)
        uoe = partition.unit_of_element
        internal = cats == 0
        same = (uoe[updates.source_i] == uoe[updates.target]) & (
            uoe[updates.source_j] == uoe[updates.target]
        )
        assert np.array_equal(internal, same)

    def test_category_geometry(self):
        """Each category's kind signature must hold for every update."""
        _, partition, updates = _setup()
        cats = classify_pair_updates(partition, updates)
        uoe = partition.unit_of_element
        kind = {u.uid: u.kind for u in partition.units}
        kj = np.array([kind[int(u)].value for u in uoe[updates.source_j]])
        ki = np.array([kind[int(u)].value for u in uoe[updates.source_i]])
        kt = np.array([kind[int(u)].value for u in uoe[updates.target]])

        def check(mask, src_j, src_i, tgt):
            if src_j is not None:
                assert (kj[mask] == src_j).all()
            if src_i is not None:
                assert (ki[mask] == src_i).all()
            if tgt is not None:
                assert (kt[mask] == tgt).all()

        check(cats == 1, "column", "column", "column")
        check(cats == 2, "column", "column", "triangle")
        check(cats == 3, "column", "column", "rectangle")
        check(cats == 4, "triangle", "rectangle", "rectangle")
        check(cats == 5, "triangle", "rectangle", "rectangle")
        check(cats == 6, "rectangle", "rectangle", "column")
        check(cats == 7, "rectangle", "rectangle", "column")
        check(cats == 8, "rectangle", "rectangle", "triangle")
        check(cats == 9, "rectangle", "rectangle", "triangle")
        check(cats == 10, "rectangle", "rectangle", "rectangle")

    def test_cat4_cosource_is_target(self):
        """Category 4: the rectangle co-source IS the target unit."""
        _, partition, updates = _setup()
        cats = classify_pair_updates(partition, updates)
        uoe = partition.unit_of_element
        m = cats == 4
        assert (uoe[updates.source_i][m] == uoe[updates.target][m]).all()

    def test_cat5_chunk_ordering(self):
        """Category 5 matches the paper's printed condition c2 < c3: the
        co-source rectangle's columns lie strictly left of the target's."""
        _, partition, updates = _setup(grain=2)
        cats = classify_pair_updates(partition, updates)
        uoe = partition.unit_of_element
        units = partition.units
        m = np.nonzero(cats == 5)[0]
        for t in m.tolist():
            r1 = units[int(uoe[updates.source_i[t]])]
            r2 = units[int(uoe[updates.target[t]])]
            tri = units[int(uoe[updates.source_j[t]])]
            assert tri.kind is BlockKind.TRIANGLE
            assert r1.uid != r2.uid
            # Same cluster, co-source chunk strictly left (or a different
            # row band with col_hi <= target col range).
            if r1.cluster == r2.cluster and r1.row_lo == r2.row_lo:
                assert r1.col_hi < r2.col_lo

    def test_cat6_8_single_source_rect(self):
        _, partition, updates = _setup()
        cats = classify_pair_updates(partition, updates)
        uoe = partition.unit_of_element
        for c in (6, 8):
            m = cats == c
            assert (uoe[updates.source_i][m] == uoe[updates.source_j][m]).all()

    def test_cat7_9_two_source_rects(self):
        _, partition, updates = _setup()
        cats = classify_pair_updates(partition, updates)
        uoe = partition.unit_of_element
        for c in (7, 9):
            m = cats == c
            assert (uoe[updates.source_i][m] != uoe[updates.source_j][m]).all()

    def test_all_column_partition_only_first_three_categories(self):
        """min_width so large that every cluster is a single column: only
        categories 0/1 can occur (every target is a column too)."""
        _, partition, updates = _setup(min_width=50)
        cats = classify_pair_updates(partition, updates)
        assert set(np.unique(cats).tolist()) <= {0, 1}

    def test_category_names_complete(self):
        assert set(CATEGORY_NAMES) == set(range(11))


class TestDependencyInfo:
    def test_edges_unique_and_no_self(self):
        _, partition, updates = _setup()
        deps = analyze_dependencies(partition, updates)
        edges = deps.edges
        assert (edges[:, 0] != edges[:, 1]).all()
        keys = edges[:, 0] * partition.num_units + edges[:, 1]
        assert len(np.unique(keys)) == len(keys)

    def test_dependency_graph_is_acyclic(self):
        """The unit DAG must admit a topological order (uid order alone
        is NOT one: triangle-interior unit rectangles update later
        diagonal unit triangles)."""
        from repro.machine import topological_order

        _, partition, updates = _setup()
        deps = analyze_dependencies(partition, updates)
        order = topological_order(partition.num_units, deps.edges)
        position = np.empty(partition.num_units, dtype=np.int64)
        position[order] = np.arange(partition.num_units)
        assert (position[deps.edges[:, 0]] < position[deps.edges[:, 1]]).all()

    def test_cross_cluster_edges_left_to_right(self):
        """Edges between different clusters always point rightward."""
        _, partition, updates = _setup()
        deps = analyze_dependencies(partition, updates)
        cu = partition.cluster_of_unit
        src_c, tgt_c = cu[deps.edges[:, 0]], cu[deps.edges[:, 1]]
        assert (src_c <= tgt_c).all()

    def test_predecessors_successors_consistent(self):
        _, partition, updates = _setup()
        deps = analyze_dependencies(partition, updates)
        for t, preds in enumerate(deps.predecessors):
            for s in preds.tolist():
                assert t in deps.successors[s].tolist()

    def test_independent_units_have_no_preds(self):
        _, partition, updates = _setup()
        deps = analyze_dependencies(partition, updates)
        for u in np.nonzero(deps.independent_units)[0].tolist():
            assert len(deps.predecessors[u]) == 0

    def test_first_unit_always_independent(self):
        _, partition, updates = _setup()
        deps = analyze_dependencies(partition, updates)
        assert deps.independent_units[0]

    def test_scale_toggle_reduces_edges(self):
        _, partition, updates = _setup()
        with_scale = analyze_dependencies(partition, updates, include_scale=True)
        without = analyze_dependencies(partition, updates, include_scale=False)
        assert without.num_edges() <= with_scale.num_edges()

    def test_edges_match_element_derivation(self):
        """Every edge must be witnessed by at least one concrete update."""
        _, partition, updates = _setup()
        deps = analyze_dependencies(partition, updates, include_scale=False)
        uoe = partition.unit_of_element
        witnessed = set()
        tgt = uoe[updates.target]
        for src in (uoe[updates.source_i], uoe[updates.source_j]):
            mask = src != tgt
            witnessed.update(zip(src[mask].tolist(), tgt[mask].tolist()))
        assert witnessed == set(map(tuple, deps.edges.tolist()))

    def test_category_counts_sum(self):
        _, partition, updates = _setup()
        deps = analyze_dependencies(partition, updates)
        assert sum(deps.category_counts.values()) == updates.num_pair_updates


class TestUnitLocator:
    def test_matches_ownership_arrays(self):
        pattern, partition, _ = _setup(n=25, extra=35, seed=3)
        loc = UnitLocator(partition)
        cols = pattern.element_cols()
        for e in range(pattern.nnz):
            r, c = int(pattern.rowidx[e]), int(cols[e])
            assert loc.locate(r, c) == int(partition.unit_of_element[e])

    def test_rejects_upper_triangle(self):
        _, partition, _ = _setup(n=10, extra=10)
        loc = UnitLocator(partition)
        with pytest.raises(ValueError):
            loc.locate(0, 5)

    def test_units_overlapping_rows(self):
        _, partition, _ = _setup(n=20, extra=25, seed=8)
        loc = UnitLocator(partition)
        units = partition.units
        for col in (0, 5, 10):
            hits = loc.units_overlapping_rows(col, 0, partition.pattern.n - 1)
            expected = sorted(
                u.uid for u in units if u.col_lo <= col <= u.col_hi
            )
            assert hits == expected

    @given(st.integers(8, 24), st.integers(0, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_locator_property(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        pattern = symbolic_cholesky(g).pattern
        partition = partition_factor(pattern, grain=3, min_width=2)
        loc = UnitLocator(partition)
        cols = pattern.element_cols()
        for e in range(0, pattern.nnz, max(1, pattern.nnz // 20)):
            r, c = int(pattern.rowidx[e]), int(cols[e])
            assert loc.locate(r, c) == int(partition.unit_of_element[e])
