"""2-D cyclic element mapping."""

import numpy as np
import pytest

from repro.core import two_d_cyclic, wrap_assignment
from repro.machine import data_traffic, load_balance, processor_work


class TestTwoDCyclic:
    def test_owner_formula(self, prepared_grid):
        a = two_d_cyclic(prepared_grid.pattern, 2, 3)
        pat = prepared_grid.pattern
        cols = pat.element_cols()
        expected = (pat.rowidx % 2) * 3 + (cols % 3)
        assert np.array_equal(a.owner_of_element, expected)
        assert a.nprocs == 6

    def test_no_unit_view(self, prepared_grid):
        a = two_d_cyclic(prepared_grid.pattern, 2, 2)
        assert a.proc_of_unit is None
        with pytest.raises(ValueError):
            a.units_of(0)

    def test_1xp_equals_wrap(self, prepared_grid):
        """A 1 x P grid is exactly the wrap column mapping."""
        a = two_d_cyclic(prepared_grid.pattern, 1, 4)
        w = wrap_assignment(prepared_grid.pattern, 4)
        assert np.array_equal(a.owner_of_element, w.owner_of_element)

    def test_grid_dims_validated(self, prepared_grid):
        with pytest.raises(ValueError):
            two_d_cyclic(prepared_grid.pattern, 0, 4)

    def test_work_conserved(self, prepared_grid):
        a = two_d_cyclic(prepared_grid.pattern, 2, 2)
        w = processor_work(a, prepared_grid.updates)
        assert int(w.sum()) == prepared_grid.total_work

    def test_2d_balances_rows_better_than_wrap_on_lap30(self, prepared_lap30):
        """The modern result: at equal P, a square grid balances at
        least comparably to 1-D wrap while usually communicating less
        per processor pair."""
        pat = prepared_lap30.pattern
        ups = prepared_lap30.updates
        a2 = two_d_cyclic(pat, 4, 4)
        a1 = wrap_assignment(pat, 16)
        lam2 = load_balance(processor_work(a2, ups)).imbalance
        lam1 = load_balance(processor_work(a1, ups)).imbalance
        assert lam2 < max(3 * lam1, 0.5)  # same balance class
        t2 = data_traffic(a2, ups)
        assert t2.total > 0
