"""Adaptive (interleaved) partitioning and scheduling (§3.2 parameter (a))."""

import numpy as np
import pytest

from repro.core import (
    SchedulerOptions,
    adaptive_block_mapping,
    adaptive_schedule,
    block_mapping,
)
from repro.core.blocks import BlockKind
from repro.symbolic import enumerate_updates, symbolic_cholesky

from ..conftest import random_connected_graph


def _setup(n=40, extra=70, seed=3):
    g = random_connected_graph(n, extra, seed)
    pattern = symbolic_cholesky(g).pattern
    return pattern, enumerate_updates(pattern)


class TestAdaptiveSchedule:
    def test_exact_cover(self):
        pattern, updates = _setup()
        partition, assignment = adaptive_schedule(pattern, updates, 4, grain=3,
                                                  min_width=2)
        partition.check_exact_cover()
        assert (assignment.owner_of_element >= 0).all()

    def test_work_conserved(self, prepared_grid):
        r = adaptive_block_mapping(prepared_grid, 6, grain=4)
        assert r.balance.total == prepared_grid.total_work

    def test_single_proc(self, prepared_grid):
        r = adaptive_block_mapping(prepared_grid, 1, grain=4)
        assert r.traffic.total == 0
        assert r.balance.imbalance == 0.0

    def test_scheme_name(self, prepared_grid):
        r = adaptive_block_mapping(prepared_grid, 4, grain=4)
        assert r.assignment.scheme == "block-adaptive"

    def test_no_more_units_than_static(self, prepared_grid):
        """Parameter (a) caps triangle splits, so the adaptive partition
        can only have fewer (or equal) units."""
        adaptive = adaptive_block_mapping(prepared_grid, 8, grain=4)
        static = block_mapping(prepared_grid, 8, grain=4)
        assert adaptive.partition.num_units <= static.partition.num_units

    def test_reduces_traffic_on_lap30(self, prepared_lap30):
        adaptive = adaptive_block_mapping(prepared_lap30, 16, grain=4)
        static = block_mapping(prepared_lap30, 16, grain=4)
        assert adaptive.traffic.total < static.traffic.total

    def test_rect_units_restricted_to_triangle_procs(self):
        pattern, updates = _setup(60, 140, 5)
        partition, assignment = adaptive_schedule(pattern, updates, 8, grain=3,
                                                  min_width=2)
        for cluster in partition.clusters:
            if cluster.is_column:
                continue
            cunits = partition.units_of_cluster(cluster.index)
            tri_procs = {
                int(assignment.proc_of_unit[u.uid])
                for u in cunits
                if u.parent_kind is BlockKind.TRIANGLE
            }
            for u in cunits:
                if u.parent_kind is BlockKind.RECTANGLE:
                    assert int(assignment.proc_of_unit[u.uid]) in tri_procs

    def test_policies(self, prepared_grid):
        for policy in ("first", "least_loaded", "round_robin"):
            r = adaptive_block_mapping(
                prepared_grid, 4, grain=4, options=SchedulerOptions(policy)
            )
            assert r.balance.total == prepared_grid.total_work

    def test_deterministic(self, prepared_grid):
        a = adaptive_block_mapping(prepared_grid, 8, grain=4)
        b = adaptive_block_mapping(prepared_grid, 8, grain=4)
        assert np.array_equal(
            a.assignment.proc_of_unit, b.assignment.proc_of_unit
        )

    def test_bad_nprocs(self, prepared_grid):
        with pytest.raises(ValueError):
            adaptive_block_mapping(prepared_grid, 0)
