"""Cluster behaviour on real (grid) factors — the paper's Figure 2 story."""

import numpy as np
import pytest

from repro.core import find_clusters, prepare
from repro.sparse import grid5, grid9
from repro.symbolic import fundamental_supernodes


@pytest.fixture(scope="module")
def grid_factor():
    return prepare(grid5(7, 7), name="grid5(7,7)").pattern


class TestGridClusters:
    def test_dense_tail_is_clustered(self, grid_factor):
        """MMD ordering leaves a dense trailing block — like the paper's
        columns 35-41 cluster — so the last cluster is multi-column and
        the widest cluster sits in the trailing part of the matrix."""
        cs = find_clusters(grid_factor, min_width=2)
        last = cs[len(cs) - 1]
        assert not last.is_column
        assert last.col_hi == grid_factor.n - 1
        widest = max(cs, key=lambda c: c.width)
        assert widest.col_hi >= 0.7 * grid_factor.n

    def test_trailing_cluster_has_no_rectangles(self, grid_factor):
        """The last cluster reaches the matrix border: nothing below it
        (the paper: 'this cluster has one dense triangle and no
        rectangles below it')."""
        cs = find_clusters(grid_factor, min_width=2)
        last = cs[len(cs) - 1]
        assert last.rectangles == ()

    def test_cluster_triangles_contain_supernode_triangles(self, grid_factor):
        """Greedy left-to-right growth may *split* a fundamental
        supernode at a strip boundary (the strip started earlier and ran
        out of density), but every multi-column cluster's triangle is
        dense, so each cluster is itself supernode-like: its columns all
        reach the cluster's last row."""
        cs = find_clusters(grid_factor, min_width=1)
        for c in cs:
            if c.is_column:
                continue
            for col in range(c.col_lo, c.col_hi + 1):
                rows = set(grid_factor.col(col).tolist())
                assert set(range(col, c.col_hi + 1)) <= rows

    def test_supernodes_split_only_at_boundaries(self, grid_factor):
        """When a supernode spans clusters, the split is a clean cut:
        each piece is a contiguous column range of one cluster."""
        cs = find_clusters(grid_factor, min_width=1)
        cmap = cs.cluster_of_column
        for s, e in fundamental_supernodes(grid_factor):
            ids = cmap[s : e + 1]
            # Pieces are contiguous: the cluster id is non-decreasing.
            assert (np.diff(ids) >= 0).all()

    def test_most_early_columns_single(self, grid_factor):
        """MMD eliminates independent low-degree nodes first, so the left
        part of the factor is dominated by single-column clusters."""
        cs = find_clusters(grid_factor, min_width=2)
        first_half = [c for c in cs if c.col_hi < grid_factor.n // 2]
        singles = sum(1 for c in first_half if c.is_column)
        assert singles >= 0.6 * len(first_half)

    def test_min_width_monotone_cluster_count(self, grid_factor):
        counts = {}
        for w in (1, 2, 4, 8):
            cs = find_clusters(grid_factor, min_width=w)
            counts[w] = sum(1 for c in cs if not c.is_column)
        assert counts[1] >= counts[2] >= counts[4] >= counts[8]

    def test_lap30_cluster_census_stable(self, prepared_lap30):
        """Regression pin: the LAP30 cluster census at the paper's width."""
        cs = find_clusters(prepared_lap30.pattern, min_width=4)
        multi = [c for c in cs if not c.is_column]
        assert len(multi) == 30
        assert max(c.width for c in multi) >= 20  # trailing dense block
