"""Per-processor execution ordering."""

import numpy as np
import pytest

from repro.core import (
    block_mapping,
    critical_path_priority,
    execution_order,
    wrap_mapping,
)
from repro.machine import unit_work


@pytest.fixture(scope="module")
def mapped(prepared_grid):
    return block_mapping(prepared_grid, 4, grain=4)


class TestExecutionOrder:
    def test_covers_every_unit_once(self, mapped):
        seqs = execution_order(mapped.assignment, mapped.dependencies)
        all_units = np.concatenate(seqs)
        assert sorted(all_units.tolist()) == list(
            range(mapped.partition.num_units)
        )

    def test_units_on_their_processor(self, mapped):
        seqs = execution_order(mapped.assignment, mapped.dependencies)
        for p, seq in enumerate(seqs):
            for u in seq.tolist():
                assert int(mapped.assignment.proc_of_unit[u]) == p

    def test_respects_dependencies_globally(self, mapped):
        seqs = execution_order(mapped.assignment, mapped.dependencies)
        position = np.empty(mapped.partition.num_units, dtype=np.int64)
        order = np.concatenate(
            [np.zeros(0, dtype=np.int64)] + [s for s in seqs]
        )
        # Reconstruct the single global sequence used for splitting: the
        # per-processor lists preserve the global topological positions,
        # so for any edge within one processor the source must come first.
        for p, seq in enumerate(seqs):
            pos = {int(u): i for i, u in enumerate(seq.tolist())}
            for s, t in mapped.dependencies.edges.tolist():
                if s in pos and t in pos:
                    assert pos[s] < pos[t]

    def test_priority_changes_order(self, mapped):
        uw = unit_work(mapped.partition, mapped.prepared.updates)
        prio = critical_path_priority(mapped.dependencies, uw)
        default = execution_order(mapped.assignment, mapped.dependencies)
        prioritized = execution_order(
            mapped.assignment, mapped.dependencies, priority=prio
        )
        # Both valid; they may or may not coincide, but shapes must match.
        assert [len(s) for s in default] == [len(s) for s in prioritized]

    def test_priority_length_checked(self, mapped):
        with pytest.raises(ValueError):
            execution_order(
                mapped.assignment, mapped.dependencies, priority=np.ones(3)
            )

    def test_requires_block_assignment(self, prepared_grid, mapped):
        w = wrap_mapping(prepared_grid, 4)
        with pytest.raises(ValueError):
            execution_order(w.assignment, mapped.dependencies)


class TestCriticalPathPriority:
    def test_sink_units_have_own_work(self, mapped):
        uw = unit_work(mapped.partition, mapped.prepared.updates)
        cp = -critical_path_priority(mapped.dependencies, uw)
        for u in range(mapped.partition.num_units):
            if len(mapped.dependencies.successors[u]) == 0:
                assert cp[u] == pytest.approx(uw[u])

    def test_monotone_along_edges(self, mapped):
        uw = unit_work(mapped.partition, mapped.prepared.updates)
        cp = -critical_path_priority(mapped.dependencies, uw)
        for s, t in mapped.dependencies.edges.tolist():
            assert cp[s] >= cp[t] + uw[s] - 1e-9

    def test_length_checked(self, mapped):
        with pytest.raises(ValueError):
            critical_path_priority(mapped.dependencies, np.ones(2))
