"""Structural validators."""

import numpy as np
import pytest

from repro.core import (
    ValidationError,
    analyze_dependencies,
    block_mapping,
    partition_factor,
    validate_assignment,
    validate_dependencies,
    validate_partition,
    wrap_assignment,
)


class TestValidatePartition:
    def test_valid_partition_passes(self, prepared_grid):
        part = partition_factor(prepared_grid.pattern, grain=4, min_width=2)
        validate_partition(part)

    def test_detects_double_cover(self, prepared_grid):
        part = partition_factor(prepared_grid.pattern, grain=4, min_width=2)
        # Corrupt: give unit 1 an element of unit 0.
        part.units[1].elements = np.concatenate(
            [part.units[1].elements, part.units[0].elements[:1]]
        )
        with pytest.raises(ValidationError, match="exactly once"):
            validate_partition(part)

    def test_detects_extent_violation(self, prepared_grid):
        part = partition_factor(prepared_grid.pattern, grain=4, min_width=2)
        u = part.units[0]
        u.row_hi = u.row_lo - 0  # keep valid...
        # ...then shrink so an owned element falls outside.
        if u.nnz > 1:
            u.row_hi = int(prepared_grid.pattern.rowidx[u.elements[0]])
            if any(
                int(prepared_grid.pattern.rowidx[e]) > u.row_hi
                for e in u.elements.tolist()
            ):
                with pytest.raises(ValidationError):
                    validate_partition(part)


class TestValidateDependencies:
    def test_valid_deps_pass(self, prepared_grid):
        part = partition_factor(prepared_grid.pattern, grain=4, min_width=2)
        deps = analyze_dependencies(part, prepared_grid.updates)
        validate_dependencies(deps)

    def test_detects_cycle(self, prepared_grid):
        part = partition_factor(prepared_grid.pattern, grain=4, min_width=2)
        deps = analyze_dependencies(part, prepared_grid.updates)
        if len(deps.edges) == 0:
            pytest.skip("no edges")
        e = deps.edges.copy()
        e = np.vstack([e, e[:1, ::-1]])  # add a reverse edge -> cycle
        deps.edges = e
        with pytest.raises(ValidationError):
            validate_dependencies(deps)


class TestValidateAssignment:
    def test_valid_block_assignment(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4)
        validate_assignment(r.assignment)

    def test_valid_wrap_assignment(self, prepared_grid):
        validate_assignment(wrap_assignment(prepared_grid.pattern, 4))

    def test_detects_owner_mismatch(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4)
        r.assignment.owner_of_element = r.assignment.owner_of_element.copy()
        r.assignment.owner_of_element[0] = (
            r.assignment.owner_of_element[0] + 1
        ) % 4
        with pytest.raises(ValidationError, match="disagree"):
            validate_assignment(r.assignment)
