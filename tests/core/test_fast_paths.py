"""Vectorized cluster scan and scheduler vs their reference paths.

The fast :func:`find_clusters` (run-length reach scan) and
:func:`schedule_blocks` (array P_a/P_t bookkeeping) must produce results
identical to the original per-entry / per-set implementations on every
matrix; nonzero ``zero_tolerance`` must dispatch to the reference and
agree with calling it directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import find_clusters, find_clusters_reference
from repro.core.dependencies import analyze_dependencies
from repro.core.partitioner import partition_clusters
from repro.core.scheduler import (
    SchedulerOptions,
    schedule_blocks,
    schedule_blocks_reference,
)
from repro.ordering import multiple_minimum_degree
from repro.sparse import band_lower_pattern, grid9
from repro.sparse import harwell_boeing as hb
from repro.symbolic import enumerate_updates, symbolic_cholesky

from ..conftest import random_connected_graph


def pattern_of(graph, ordered=True):
    perm = multiple_minimum_degree(graph) if ordered else None
    return symbolic_cholesky(graph, perm).pattern


def assert_clusters_identical(pattern, min_width=4, zero_tolerance=0.0):
    fast = find_clusters(pattern, min_width, zero_tolerance)
    ref = find_clusters_reference(pattern, min_width, zero_tolerance)
    assert len(fast.clusters) == len(ref.clusters)
    for a, b in zip(fast.clusters, ref.clusters):
        assert a == b


class TestClusterIdentity:
    @pytest.mark.parametrize("name", hb.names())
    def test_paper_matrices(self, name):
        assert_clusters_identical(pattern_of(hb.load(name)))

    @pytest.mark.parametrize("min_width", [1, 2, 3, 4, 6])
    def test_min_width_sweep(self, min_width):
        pattern = pattern_of(grid9(14, 14))
        assert_clusters_identical(pattern, min_width=min_width)

    def test_band_pattern(self):
        # Bands are the all-dense extreme: one run per column.
        assert_clusters_identical(band_lower_pattern(200, 11))

    def test_nonzero_tolerance_dispatches_to_reference(self):
        pattern = pattern_of(hb.load("DWT512"))
        fast = find_clusters(pattern, 4, 0.05)
        ref = find_clusters_reference(pattern, 4, 0.05)
        assert len(fast.clusters) == len(ref.clusters)
        for a, b in zip(fast.clusters, ref.clusters):
            assert a == b

    def test_rejects_bad_params(self):
        pattern = band_lower_pattern(10, 3)
        with pytest.raises(ValueError):
            find_clusters(pattern, min_width=0)
        with pytest.raises(ValueError):
            find_clusters(pattern, zero_tolerance=-0.1)

    @given(st.integers(1, 35), st.integers(0, 50), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        pattern = pattern_of(g)
        for min_width in (1, 3, 4):
            assert_clusters_identical(pattern, min_width=min_width)


def assert_schedule_identical(pattern, nprocs, policy, grain=4):
    clusters = find_clusters(pattern)
    partition = partition_clusters(pattern, clusters, grain_triangle=grain)
    deps = analyze_dependencies(partition, enumerate_updates(pattern))
    options = SchedulerOptions(dependent_column_policy=policy)
    fast = schedule_blocks(partition, deps, nprocs, options=options)
    ref = schedule_blocks_reference(partition, deps, nprocs, options=options)
    np.testing.assert_array_equal(fast.proc_of_unit, ref.proc_of_unit)
    np.testing.assert_array_equal(fast.owner_of_element, ref.owner_of_element)


class TestSchedulerIdentity:
    @pytest.mark.parametrize("policy", ["first", "least_loaded", "round_robin"])
    @pytest.mark.parametrize("nprocs", [1, 4, 16])
    def test_paper_matrix_policies(self, nprocs, policy):
        pattern = pattern_of(hb.load("DWT512"))
        assert_schedule_identical(pattern, nprocs, policy)

    def test_band_pattern(self):
        assert_schedule_identical(band_lower_pattern(150, 9), 8, "first")

    def test_more_procs_than_units(self):
        assert_schedule_identical(pattern_of(grid9(5, 5)), 64, "least_loaded")

    def test_rejects_nonpositive_nprocs(self):
        pattern = pattern_of(grid9(4, 4))
        clusters = find_clusters(pattern)
        partition = partition_clusters(pattern, clusters)
        deps = analyze_dependencies(partition, enumerate_updates(pattern))
        with pytest.raises(ValueError):
            schedule_blocks(partition, deps, 0)

    @given(
        st.integers(2, 30),
        st.integers(0, 40),
        st.integers(0, 2**31 - 1),
        st.integers(1, 9),
        st.sampled_from(["first", "least_loaded", "round_robin"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_graphs(self, n, extra, seed, nprocs, policy):
        g = random_connected_graph(n, extra, seed)
        assert_schedule_identical(pattern_of(g), nprocs, policy, grain=3)
