"""Pipeline drivers."""

import numpy as np
import pytest

from repro.core import block_mapping, prepare, wrap_mapping
from repro.sparse import grid9


class TestPrepare:
    def test_prepare_names(self, prepared_grid):
        assert prepared_grid.name == "grid9(8,8)"
        assert prepared_grid.factor_nnz >= prepared_grid.graph.nnz_lower

    def test_updates_cached(self, prepared_grid):
        assert prepared_grid.updates is prepared_grid.updates

    def test_total_work_positive(self, prepared_grid):
        assert prepared_grid.total_work > 0

    def test_natural_ordering(self):
        g = grid9(4, 4)
        prep = prepare(g, ordering="natural")
        assert np.array_equal(prep.perm, np.arange(g.n))


class TestBlockMapping:
    def test_summary_fields(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4)
        s = r.summary()
        assert s["scheme"] == "block"
        assert s["nprocs"] == 4
        assert s["traffic_total"] == r.traffic.total
        assert s["imbalance"] == r.balance.imbalance

    def test_work_conserved(self, prepared_grid):
        for p in (1, 2, 4, 8):
            r = block_mapping(prepared_grid, p, grain=4)
            assert r.balance.total == prepared_grid.total_work

    def test_single_proc_no_traffic(self, prepared_grid):
        r = block_mapping(prepared_grid, 1, grain=4)
        assert r.traffic.total == 0
        assert r.balance.imbalance == 0.0

    def test_partition_attached(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4)
        assert r.partition is not None
        assert r.dependencies is not None
        r.partition.check_exact_cover()

    def test_grain_trade_off(self, prepared_grid):
        lo = block_mapping(prepared_grid, 8, grain=2)
        hi = block_mapping(prepared_grid, 8, grain=30)
        assert hi.traffic.total <= lo.traffic.total

    def test_scale_traffic_toggle(self, prepared_grid):
        with_scale = block_mapping(prepared_grid, 4, grain=4)
        without = block_mapping(
            prepared_grid, 4, grain=4, include_scale_traffic=False
        )
        assert without.traffic.total <= with_scale.traffic.total


class TestWrapMapping:
    def test_single_proc_no_traffic(self, prepared_grid):
        r = wrap_mapping(prepared_grid, 1)
        assert r.traffic.total == 0
        assert r.balance.imbalance == 0.0

    def test_work_conserved(self, prepared_grid):
        for p in (1, 3, 16):
            r = wrap_mapping(prepared_grid, p)
            assert r.balance.total == prepared_grid.total_work

    def test_no_partition(self, prepared_grid):
        r = wrap_mapping(prepared_grid, 4)
        assert r.partition is None

    def test_traffic_grows_with_procs(self, prepared_grid):
        t = [wrap_mapping(prepared_grid, p).traffic.total for p in (1, 2, 4, 8)]
        assert t == sorted(t)
