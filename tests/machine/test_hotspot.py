"""Hot-spot profile metrics."""

import numpy as np
import pytest

from repro.core import block_mapping, wrap_assignment, wrap_mapping
from repro.machine import HotspotProfile, data_traffic, hotspot_profile


class TestHotspotProfile:
    def test_empty(self):
        p = HotspotProfile(np.zeros((3, 3), dtype=np.int64))
        assert p.total == 0
        assert p.hotspot_factor == 1.0
        assert p.pairs_for_fraction() == 0

    def test_single_pair(self):
        m = np.zeros((3, 3), dtype=np.int64)
        m[1, 0] = 10
        p = HotspotProfile(m)
        assert p.active_pairs == 1
        assert p.max_inbound == 10
        assert p.max_outbound == 10
        assert p.pairs_for_fraction(1.0) == 1

    def test_hotspot_factor_uniform(self):
        m = np.ones((4, 4), dtype=np.int64)
        np.fill_diagonal(m, 0)
        assert HotspotProfile(m).hotspot_factor == pytest.approx(1.0)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            HotspotProfile(np.ones((2, 2), dtype=np.int64)).pairs_for_fraction(0.0)

    def test_profile_totals_match_traffic(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 4)
        p = hotspot_profile(a, prepared_grid.updates)
        t = data_traffic(a, prepared_grid.updates)
        assert p.total == t.total

    def test_block_more_concentrated_than_wrap(self, prepared_lap30):
        """The paper's hot-spot paragraph, quantified."""
        blk = block_mapping(prepared_lap30, 16, grain=25)
        wrp = wrap_mapping(prepared_lap30, 16)
        pb = hotspot_profile(blk.assignment, prepared_lap30.updates)
        pw = hotspot_profile(wrp.assignment, prepared_lap30.updates)
        assert pb.pairs_for_fraction(0.9) < pw.pairs_for_fraction(0.9)
        assert pb.total < pw.total

    def test_mean_partners_bounded(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 4)
        p = hotspot_profile(a, prepared_grid.updates)
        assert 0 <= p.mean_partners <= 3
