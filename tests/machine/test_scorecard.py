"""Assignment scorecard."""

import pytest

from repro.core import block_mapping, wrap_mapping
from repro.machine import scorecard


class TestScorecard:
    def test_fields_present(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4)
        card = scorecard(r.assignment, prepared_grid.updates)
        for key in (
            "scheme", "nprocs", "factor_traffic_total", "factor_imbalance",
            "solve_traffic_total", "hotspot_factor", "pairs_for_90pct_traffic",
        ):
            assert key in card

    def test_consistent_with_mapping_result(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4)
        card = scorecard(r.assignment, prepared_grid.updates)
        assert card["factor_traffic_total"] == r.traffic.total
        assert card["factor_imbalance"] == pytest.approx(r.balance.imbalance)
        assert card["factor_work_total"] == prepared_grid.total_work

    def test_wrap_vs_block_story(self, prepared_lap30):
        blk = scorecard(
            block_mapping(prepared_lap30, 16, grain=25).assignment,
            prepared_lap30.updates,
        )
        wrp = scorecard(
            wrap_mapping(prepared_lap30, 16).assignment, prepared_lap30.updates
        )
        assert blk["factor_traffic_total"] < wrp["factor_traffic_total"]
        assert blk["factor_imbalance"] > wrp["factor_imbalance"]
        # On LAP30 at P=16 both schemes touch every partner at least
        # once; the concentration measure is the discriminator.
        assert blk["pairs_for_90pct_traffic"] < wrp["pairs_for_90pct_traffic"]

    def test_cli_target(self, capsys):
        from repro.cli import main

        assert main(["scorecard", "--matrix", "DWT512", "--grain", "25"]) == 0
        out = capsys.readouterr().out
        assert "hotspot_factor" in out

    def test_cli_sweep_csv(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "s.csv"
        assert main(["sweep", "--matrix", "DWT512", "--output", str(out_path)]) == 0
        assert out_path.read_text().startswith("matrix,scheme")


class TestSimScorecard:
    def test_extends_static_card(self, prepared_grid):
        from repro.machine import sim_scorecard

        r = block_mapping(prepared_grid, 4, grain=4)
        card = sim_scorecard(r.assignment, prepared_grid.updates)
        static = scorecard(r.assignment, prepared_grid.updates)
        for key, value in static.items():
            assert card[key] == value
        assert card["sim_makespan"] > 0
        # The ledger and the traffic metric share one dedup rule.
        assert card["sim_message_bytes"] == card["factor_traffic_total"]
        assert 0.0 <= card["sim_cp_wait_fraction"] <= 1.0
