"""Load-balance metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import imbalance_factor, load_balance


class TestLoadBalance:
    def test_perfect_balance(self):
        lb = load_balance([10, 10, 10, 10])
        assert lb.imbalance == 0.0
        assert lb.efficiency == 1.0
        assert lb.speedup == 4.0

    def test_paper_formula(self):
        """λ = (W_max − W_ave)·N / W_tot."""
        w = np.array([30, 10, 10, 10])
        lb = load_balance(w)
        n = 4
        expected = (lb.max - lb.mean) * n / lb.total
        assert lb.imbalance == pytest.approx(expected)

    def test_lambda_efficiency_relation(self):
        """λ = 1/e − 1 (paper §4)."""
        lb = load_balance([5, 15, 20, 8])
        assert lb.imbalance == pytest.approx(1.0 / lb.efficiency - 1.0)

    def test_single_proc(self):
        lb = load_balance([42])
        assert lb.imbalance == 0.0
        assert lb.speedup == 1.0

    def test_all_zero(self):
        lb = load_balance([0, 0])
        assert lb.imbalance == 0.0
        assert lb.efficiency == 1.0

    def test_one_proc_idle(self):
        lb = load_balance([10, 0])
        assert lb.imbalance == pytest.approx(1.0)
        assert lb.efficiency == pytest.approx(0.5)

    def test_helper(self):
        assert imbalance_factor([4, 4]) == 0.0

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_invariants_property(self, work):
        lb = load_balance(work)
        assert lb.imbalance >= 0.0
        assert 0.0 < lb.efficiency <= 1.0
        assert lb.imbalance == pytest.approx(1.0 / lb.efficiency - 1.0)
        assert lb.speedup <= len(work)
