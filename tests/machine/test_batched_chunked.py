"""Chunked batched-traffic kernel vs the one-shot reference.

The contract the streaming rework must keep: for ANY chunk size the
accumulated counts are bit-identical to :func:`batched_traffic_oneshot`
(and hence to the per-assignment references) — on every bundled matrix.
Chunk boundaries are snapped to source-run starts, so no (processor,
source) pair can be double-counted across chunks; these tests drive the
kernel at adversarially tiny chunk sizes where any snapping bug shows
up immediately.
"""

import numpy as np
import pytest

from repro.core import (
    partition_prepared,
    prepare,
    schedule_blocks,
    wrap_assignment,
)
from repro.machine import (
    batched_traffic,
    batched_traffic_oneshot,
    build_read_index,
    read_chunk_bounds,
)
from repro.sparse import harwell_boeing as hb

PROCS = (3, 16, 64)


@pytest.fixture(scope="module", params=hb.names())
def prepped(request):
    return prepare(hb.load(request.param), name=request.param)


def _mixed_batch(prepped):
    pm = partition_prepared(prepped, grain=25, min_width=4)
    block = [
        schedule_blocks(pm.partition, pm.dependencies, p, unit_work=pm.unit_work)
        for p in PROCS
    ]
    wrap = [wrap_assignment(prepped.pattern, p) for p in PROCS]
    assignments = block + wrap
    owners = [a.owner_of_element for a in assignments]
    nprocs = [a.nprocs for a in assignments]
    return owners, nprocs


class TestChunkedBitIdentity:
    @pytest.mark.parametrize("chunk_reads", [1, 7, 1000, 10**9])
    def test_every_bundled_matrix(self, prepped, chunk_reads):
        owners, nprocs = _mixed_batch(prepped)
        index = build_read_index(prepped.updates)
        reference = batched_traffic_oneshot(
            prepped.updates, owners, nprocs, read_index=index
        )
        chunked = batched_traffic(
            prepped.updates, owners, nprocs, read_index=index,
            chunk_reads=chunk_reads,
        )
        assert len(chunked) == len(reference)
        for got, want in zip(chunked, reference):
            np.testing.assert_array_equal(got.per_processor, want.per_processor)

    def test_env_override(self, prepped, monkeypatch):
        owners, nprocs = _mixed_batch(prepped)
        reference = batched_traffic_oneshot(prepped.updates, owners, nprocs)
        monkeypatch.setenv("REPRO_BATCH_CHUNK_READS", "13")
        chunked = batched_traffic(prepped.updates, owners, nprocs)
        for got, want in zip(chunked, reference):
            np.testing.assert_array_equal(got.per_processor, want.per_processor)


class TestReadChunkBounds:
    def test_trivial_cases(self):
        assert read_chunk_bounds(np.zeros(0, dtype=np.int32), 10) == [0]
        src = np.array([0, 0, 1], dtype=np.int32)
        assert read_chunk_bounds(src, 0) == [0, 3]  # 0 disables chunking
        assert read_chunk_bounds(src, 10) == [0, 3]

    def test_bounds_never_split_a_source_run(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            runs = rng.integers(1, 9, size=rng.integers(1, 40))
            src = np.repeat(np.arange(len(runs)), runs).astype(np.int32)
            chunk = int(rng.integers(1, 12))
            bounds = read_chunk_bounds(src, chunk)
            assert bounds[0] == 0 and bounds[-1] == len(src)
            assert bounds == sorted(set(bounds))
            for b in bounds[1:-1]:
                assert src[b] != src[b - 1], "boundary splits a source run"

    def test_giant_single_run_becomes_one_chunk(self):
        src = np.zeros(100, dtype=np.int32)
        assert read_chunk_bounds(src, 7) == [0, 100]

    def test_covers_all_reads_exactly_once(self):
        src = np.repeat(np.arange(20), 3).astype(np.int32)
        bounds = read_chunk_bounds(src, 4)
        spans = list(zip(bounds, bounds[1:]))
        assert sum(hi - lo for lo, hi in spans) == len(src)
        assert all(hi > lo for lo, hi in spans)
