"""Batched multi-assignment metrics vs the per-assignment references.

The batched kernel's contract is array-for-array value identity with
:func:`data_traffic_reference` / :func:`processor_work_reference` — on
every bundled matrix, every mapping scheme, and mixed processor counts
inside one batch.
"""

import numpy as np
import pytest

from repro.core import (
    Assignment,
    adaptive_block_mapping,
    partition_prepared,
    prepare,
    schedule_blocks,
    wrap_assignment,
)
from repro.machine import (
    batched_load_balance,
    batched_metrics,
    batched_traffic,
    build_read_index,
    data_traffic_reference,
    load_balance,
    processor_work_reference,
)
from repro.sparse import harwell_boeing as hb

PROCS = (3, 16, 64)


@pytest.fixture(scope="module", params=hb.names())
def prepped(request):
    return prepare(hb.load(request.param), name=request.param)


def _assignments(prepped, scheme):
    if scheme == "wrap":
        return [wrap_assignment(prepped.pattern, p) for p in PROCS]
    if scheme == "block":
        pm = partition_prepared(prepped, grain=25, min_width=4)
        return [
            schedule_blocks(pm.partition, pm.dependencies, p, unit_work=pm.unit_work)
            for p in PROCS
        ]
    return [
        adaptive_block_mapping(prepped, p, grain=25, min_width=4).assignment
        for p in PROCS
    ]


def _assert_identical(updates, assignments, read_index=None):
    batched = batched_metrics(updates, assignments, read_index=read_index)
    assert len(batched) == len(assignments)
    for a, (traffic, balance) in zip(assignments, batched):
        ref_traffic = data_traffic_reference(a, updates)
        ref_balance = load_balance(processor_work_reference(a, updates))
        np.testing.assert_array_equal(
            traffic.per_processor, ref_traffic.per_processor
        )
        np.testing.assert_array_equal(
            balance.per_processor, ref_balance.per_processor
        )
        assert traffic.total == ref_traffic.total
        assert balance.imbalance == ref_balance.imbalance


class TestEveryBundledMatrix:
    @pytest.mark.parametrize("scheme", ["wrap", "block", "block-adaptive"])
    def test_matches_reference(self, prepped, scheme):
        _assert_identical(prepped.updates, _assignments(prepped, scheme))


class TestBatchShapes:
    @pytest.fixture(scope="class")
    def lap30(self):
        return prepare(hb.load("LAP30"), name="LAP30")

    def test_mixed_schemes_and_procs_in_one_batch(self, lap30):
        pm = partition_prepared(lap30, grain=4, min_width=4)
        mixed = [
            wrap_assignment(lap30.pattern, 7),
            schedule_blocks(pm.partition, pm.dependencies, 16, unit_work=pm.unit_work),
            adaptive_block_mapping(lap30, 1024).assignment,
            wrap_assignment(lap30.pattern, 1),
        ]
        _assert_identical(lap30.updates, mixed)

    def test_single_assignment_batch(self, lap30):
        _assert_identical(lap30.updates, [wrap_assignment(lap30.pattern, 16)])

    def test_empty_batch(self, lap30):
        assert batched_metrics(lap30.updates, []) == []

    def test_prepared_read_index_is_equivalent(self, lap30):
        assignments = [wrap_assignment(lap30.pattern, p) for p in PROCS]
        _assert_identical(lap30.updates, assignments, read_index=lap30.read_index)

    def test_exclude_scale_matches_reference(self, lap30):
        updates = lap30.updates
        assignments = [wrap_assignment(lap30.pattern, p) for p in PROCS]
        owners = [a.owner_of_element for a in assignments]
        batched = batched_traffic(
            updates, owners, list(PROCS), include_scale=False
        )
        for a, traffic in zip(assignments, batched):
            ref = data_traffic_reference(a, updates, include_scale=False)
            np.testing.assert_array_equal(
                traffic.per_processor, ref.per_processor
            )

    def test_random_owner_arrays(self, lap30):
        rng = np.random.default_rng(7)
        nnz = lap30.pattern.nnz
        nprocs = [5, 33, 900]
        assignments = [
            Assignment("random", p, lap30.pattern,
                       rng.integers(0, p, size=nnz).astype(np.int64))
            for p in nprocs
        ]
        _assert_identical(lap30.updates, assignments)


class TestValidation:
    @pytest.fixture(scope="class")
    def lap30(self):
        return prepare(hb.load("LAP30"), name="LAP30")

    def test_mismatched_read_index_rejected(self, lap30):
        index = build_read_index(lap30.updates, include_scale=False)
        with pytest.raises(ValueError, match="include_scale"):
            batched_traffic(
                lap30.updates,
                [wrap_assignment(lap30.pattern, 4).owner_of_element],
                [4],
                read_index=index,
                include_scale=True,
            )

    def test_wrong_owner_length_rejected(self, lap30):
        bad = Assignment(
            "wrap", 4, lap30.pattern,
            np.zeros(lap30.pattern.nnz, dtype=np.int64),
        )
        object.__setattr__(bad, "owner_of_element", np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="elements"):
            batched_metrics(lap30.updates, [bad])

    def test_nprocs_count_mismatch_rejected(self, lap30):
        owners = [wrap_assignment(lap30.pattern, 4).owner_of_element]
        with pytest.raises(ValueError, match="one processor count"):
            batched_traffic(lap30.updates, owners, [4, 8])
        with pytest.raises(ValueError, match="one processor count"):
            batched_load_balance(lap30.updates, owners, [4, 8])


class TestReadIndex:
    def test_sorted_by_source_and_complete(self):
        prep = prepare(hb.load("DWT512"), name="DWT512")
        updates = prep.updates
        index = build_read_index(updates)
        assert np.all(np.diff(index.src) >= 0)
        # Two pair-update reads per update plus one scale read per element.
        assert index.num_reads == 2 * updates.num_pair_updates + prep.pattern.nnz
        no_scale = build_read_index(updates, include_scale=False)
        assert no_scale.num_reads == 2 * updates.num_pair_updates
