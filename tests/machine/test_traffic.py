"""Data-traffic accounting against the paper's definition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import block_mapping, wrap_assignment
from repro.machine import communication_matrix, data_traffic
from repro.symbolic import enumerate_updates, symbolic_cholesky

from ..conftest import brute_force_traffic, random_connected_graph


class TestDataTraffic:
    def test_single_proc_zero(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 1)
        t = data_traffic(a, prepared_grid.updates)
        assert t.total == 0

    def test_matches_brute_force_wrap(self):
        g = random_connected_graph(18, 25, seed=4)
        pattern = symbolic_cholesky(g).pattern
        ups = enumerate_updates(pattern)
        for p in (2, 3, 5):
            a = wrap_assignment(pattern, p)
            t = data_traffic(a, ups)
            expected = brute_force_traffic(a.owner_of_element, pattern)
            assert t.per_processor[: len(expected)].tolist() == expected.tolist()

    def test_matches_brute_force_random_owner(self):
        g = random_connected_graph(15, 20, seed=9)
        pattern = symbolic_cholesky(g).pattern
        ups = enumerate_updates(pattern)
        rng = np.random.default_rng(0)
        from repro.core import Assignment

        owner = rng.integers(0, 4, size=pattern.nnz).astype(np.int64)
        a = Assignment("random", 4, pattern, owner)
        t = data_traffic(a, ups)
        expected = brute_force_traffic(owner, pattern)
        assert t.per_processor.tolist() == expected.tolist()

    def test_caching_dedupes(self):
        """A source element used by many updates of one processor counts
        once (the paper's fetch-once rule)."""
        g = random_connected_graph(14, 20, seed=5)
        pattern = symbolic_cholesky(g).pattern
        ups = enumerate_updates(pattern)
        a = wrap_assignment(pattern, 2)
        t = data_traffic(a, ups)
        # Upper bound if every read counted: 2 reads per pair update + 1
        # scale read per element.
        naive = 2 * ups.num_pair_updates + pattern.nnz
        assert t.total < naive

    def test_total_and_mean(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 4)
        t = data_traffic(a, prepared_grid.updates)
        assert t.total == int(t.per_processor.sum())
        assert t.mean == pytest.approx(t.total / 4)
        assert t.max == int(t.per_processor.max())

    def test_scale_toggle_monotone(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 4)
        with_scale = data_traffic(a, prepared_grid.updates, include_scale=True)
        without = data_traffic(a, prepared_grid.updates, include_scale=False)
        assert without.total <= with_scale.total

    def test_traffic_bounded_by_procs_times_nnz(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 8)
        t = data_traffic(a, prepared_grid.updates)
        assert t.total <= 8 * prepared_grid.factor_nnz

    @given(st.integers(6, 16), st.integers(0, 20), st.integers(0, 2**31 - 1),
           st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_brute_force_property(self, n, extra, seed, nprocs):
        g = random_connected_graph(n, extra, seed)
        pattern = symbolic_cholesky(g).pattern
        ups = enumerate_updates(pattern)
        a = wrap_assignment(pattern, nprocs)
        t = data_traffic(a, ups)
        expected = brute_force_traffic(a.owner_of_element, pattern)
        got = t.per_processor[: len(expected)]
        assert got.tolist() == expected.tolist()


class TestCommunicationMatrix:
    def test_row_sums_equal_traffic(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 4)
        t = data_traffic(a, prepared_grid.updates)
        c = communication_matrix(a, prepared_grid.updates)
        assert np.array_equal(c.sum(axis=1), t.per_processor)

    def test_diagonal_zero(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 4)
        c = communication_matrix(a, prepared_grid.updates)
        assert (np.diag(c) == 0).all()

    def test_block_mapping_concentrates_traffic(self, prepared_lap30):
        """The paper's hot-spot claim: block mappings confine most
        communication to small processor groups.  Measured as the number
        of ordered processor pairs needed to cover 90% of the traffic."""
        from repro.core import wrap_mapping

        def pairs_for_90pct(result):
            c = np.sort(
                communication_matrix(
                    result.assignment, prepared_lap30.updates
                ).ravel()
            )[::-1]
            cum = np.cumsum(c)
            return int(np.searchsorted(cum, 0.9 * cum[-1])) + 1

        nprocs = 16
        blk = block_mapping(prepared_lap30, nprocs, grain=25)
        wrp = wrap_mapping(prepared_lap30, nprocs)
        assert pairs_for_90pct(blk) < pairs_for_90pct(wrp)
