"""Event-driven schedule simulation."""

import numpy as np
import pytest

from repro.core import analyze_dependencies, block_mapping, wrap_mapping
from repro.machine import (
    MachineModel,
    edge_volumes,
    simulate_schedule,
    topological_order,
)


class TestTopologicalOrder:
    def test_chain(self):
        edges = np.array([[0, 1], [1, 2]])
        assert topological_order(3, edges).tolist() == [0, 1, 2]

    def test_tie_break_by_uid(self):
        edges = np.zeros((0, 2), dtype=np.int64)
        assert topological_order(4, edges).tolist() == [0, 1, 2, 3]

    def test_cycle_detected(self):
        edges = np.array([[0, 1], [1, 0]])
        with pytest.raises(ValueError, match="cycle"):
            topological_order(2, edges)

    def test_reverse_edge_ordering(self):
        edges = np.array([[3, 0]])
        order = topological_order(4, edges).tolist()
        assert order.index(3) < order.index(0)


class TestEdgeVolumes:
    def test_positive_on_every_pair_edge(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4)
        vols = edge_volumes(r.assignment, r.dependencies, prepared_grid.updates)
        assert all(v >= 1 for v in vols.values())
        edge_set = set(map(tuple, r.dependencies.edges.tolist()))
        assert set(vols) == edge_set

    def test_volume_bounded_by_source_size(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4)
        vols = edge_volumes(r.assignment, r.dependencies, prepared_grid.updates)
        units = r.partition.units
        for (s, _t), v in vols.items():
            assert v <= units[s].nnz

    def test_requires_block_assignment(self, prepared_grid):
        r = wrap_mapping(prepared_grid, 4)
        deps = analyze_dependencies(
            block_mapping(prepared_grid, 4, grain=4).partition,
            prepared_grid.updates,
        )
        with pytest.raises(ValueError):
            edge_volumes(r.assignment, deps, prepared_grid.updates)


class TestSimulateSchedule:
    def test_single_proc_makespan_is_total_work(self, prepared_grid):
        r = block_mapping(prepared_grid, 1, grain=4)
        tl = simulate_schedule(
            r.assignment, r.dependencies, prepared_grid.updates,
            MachineModel(compute=1.0, alpha=0.0, beta=0.0),
        )
        assert tl.makespan == pytest.approx(prepared_grid.total_work)
        assert tl.idle_fraction == pytest.approx(0.0)

    def test_makespan_at_least_critical_work(self, prepared_grid):
        r = block_mapping(prepared_grid, 8, grain=4)
        tl = simulate_schedule(
            r.assignment, r.dependencies, prepared_grid.updates,
            MachineModel(alpha=0.0, beta=0.0),
        )
        # Perfect speedup bound.
        assert tl.makespan >= prepared_grid.total_work / 8

    def test_communication_slows_schedule(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4)
        fast = simulate_schedule(
            r.assignment, r.dependencies, prepared_grid.updates,
            MachineModel(alpha=0.0, beta=0.0),
        )
        slow = simulate_schedule(
            r.assignment, r.dependencies, prepared_grid.updates,
            MachineModel(alpha=100.0, beta=5.0),
        )
        assert slow.makespan >= fast.makespan

    def test_start_after_predecessors(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4)
        tl = simulate_schedule(
            r.assignment, r.dependencies, prepared_grid.updates,
            MachineModel(alpha=0.0, beta=0.0),
        )
        for u, preds in enumerate(r.dependencies.predecessors):
            for q in preds.tolist():
                assert tl.start[u] >= tl.finish[q] - 1e-9

    def test_requires_block_assignment(self, prepared_grid):
        r = wrap_mapping(prepared_grid, 4)
        blk = block_mapping(prepared_grid, 4, grain=4)
        with pytest.raises(ValueError):
            simulate_schedule(r.assignment, blk.dependencies, prepared_grid.updates)

    def test_paper_idle_claim(self, prepared_lap30):
        """'If the number of processors is small compared to schedulable
        units, the allocation provides enough parallelism to keep idle
        time to a minimum' — check with free communication."""
        r = block_mapping(prepared_lap30, 4, grain=4)
        assert r.partition.num_units > 40 * 4
        tl = simulate_schedule(
            r.assignment, r.dependencies, prepared_lap30.updates,
            MachineModel(alpha=0.0, beta=0.0),
        )
        assert tl.idle_fraction < 0.25
