"""Brute-force cross-check for the backward sweep of the solve metrics."""

import numpy as np
import pytest

from repro.core import block_mapping, wrap_assignment
from repro.machine import solve_traffic


def _brute_backward(pattern, owner, nprocs):
    """Backward sweep (Lᵀ): element (i, j)'s owner reads x_i (held by
    diag owner of i); column j's dot aggregator (diag owner of j) reads
    one aggregate per remote contributing processor."""
    diag_owner = owner[pattern.indptr[:-1]]
    cols = pattern.element_cols()
    x_reads = set()
    contribs = set()
    for e in range(pattern.nnz):
        i, j = int(pattern.rowidx[e]), int(cols[e])
        if i == j:
            continue
        p = int(owner[e])
        if p != int(diag_owner[i]):
            x_reads.add((p, i))
        acc = int(diag_owner[j])
        if acc != p:
            contribs.add((acc, j, p))
    out = np.zeros(nprocs, dtype=np.int64)
    for p, _ in x_reads:
        out[p] += 1
    for acc, _, _ in contribs:
        out[acc] += 1
    return out


class TestBackwardSweep:
    def test_wrap(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 3)
        fwd = solve_traffic(a, both_sweeps=False).per_processor
        both = solve_traffic(a, both_sweeps=True).per_processor
        backward = both - fwd
        expected = _brute_backward(
            prepared_grid.pattern, a.owner_of_element, 3
        )
        assert backward.tolist() == expected.tolist()

    def test_block(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=6)
        a = r.assignment
        fwd = solve_traffic(a, both_sweeps=False).per_processor
        both = solve_traffic(a, both_sweeps=True).per_processor
        expected = _brute_backward(
            prepared_grid.pattern, a.owner_of_element, 4
        )
        assert (both - fwd).tolist() == expected.tolist()

    def test_random_owner(self, prepared_grid):
        rng = np.random.default_rng(9)
        from repro.core import Assignment

        pattern = prepared_grid.pattern
        owner = rng.integers(0, 5, size=pattern.nnz).astype(np.int64)
        a = Assignment("random", 5, pattern, owner)
        fwd = solve_traffic(a, both_sweeps=False).per_processor
        both = solve_traffic(a, both_sweeps=True).per_processor
        expected = _brute_backward(pattern, owner, 5)
        assert (both - fwd).tolist() == expected.tolist()
