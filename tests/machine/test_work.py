"""Work accounting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    analyze_dependencies,
    block_mapping,
    partition_factor,
    schedule_blocks,
    wrap_assignment,
)
from repro.machine import processor_work, total_work, unit_work
from repro.symbolic import enumerate_updates, sequential_work, symbolic_cholesky

from ..conftest import random_connected_graph


class TestProcessorWork:
    def test_sums_to_total_wrap(self, prepared_grid):
        ups = prepared_grid.updates
        for p in (1, 2, 5, 9):
            a = wrap_assignment(prepared_grid.pattern, p)
            w = processor_work(a, ups)
            assert int(w.sum()) == total_work(ups)

    def test_sums_to_total_block(self, prepared_grid):
        ups = prepared_grid.updates
        for grain in (2, 10, 40):
            r = block_mapping(prepared_grid, 6, grain=grain)
            assert r.balance.total == total_work(ups)

    def test_matches_sequential_work_formula(self, prepared_grid):
        assert total_work(prepared_grid.updates) == sequential_work(
            prepared_grid.graph, prepared_grid.perm
        )

    def test_single_proc_gets_everything(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 1)
        w = processor_work(a, prepared_grid.updates)
        assert w.tolist() == [total_work(prepared_grid.updates)]


class TestUnitWork:
    def test_sums_to_total(self, prepared_grid):
        part = partition_factor(prepared_grid.pattern, grain=4, min_width=2)
        uw = unit_work(part, prepared_grid.updates)
        assert int(uw.sum()) == total_work(prepared_grid.updates)

    def test_column_unit_work(self):
        """A column unit's work is the work of its column's elements."""
        g = random_connected_graph(12, 8, seed=2)
        pattern = symbolic_cholesky(g).pattern
        part = partition_factor(pattern, grain=4, min_width=50)  # all columns
        ups = enumerate_updates(pattern)
        uw = unit_work(part, ups)
        ew = ups.element_work()
        for u in part.units:
            assert uw[u.uid] == int(ew[u.elements].sum())

    @given(st.integers(5, 30), st.integers(0, 40), st.integers(0, 2**31 - 1),
           st.integers(1, 10))
    @settings(max_examples=15, deadline=None)
    def test_partition_invariance_property(self, n, extra, seed, grain):
        """Total work is independent of the partition (paper's model)."""
        g = random_connected_graph(n, extra, seed)
        pattern = symbolic_cholesky(g).pattern
        ups = enumerate_updates(pattern)
        part = partition_factor(pattern, grain=grain, min_width=2)
        deps = analyze_dependencies(part, ups)
        for p in (1, 3):
            a = schedule_blocks(part, deps, p)
            assert int(processor_work(a, ups).sum()) == total_work(ups)
