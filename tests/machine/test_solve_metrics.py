"""Triangular-solve phase metrics."""

import numpy as np
import pytest

from repro.core import block_mapping, wrap_assignment, wrap_mapping
from repro.machine import solve_balance, solve_traffic, solve_work


class TestSolveWork:
    def test_total_is_nnz_per_sweep(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 4)
        one = solve_work(a, both_sweeps=False)
        two = solve_work(a, both_sweeps=True)
        assert int(one.sum()) == prepared_grid.factor_nnz
        assert int(two.sum()) == 2 * prepared_grid.factor_nnz

    def test_partition_invariant(self, prepared_grid):
        w = wrap_mapping(prepared_grid, 4)
        b = block_mapping(prepared_grid, 4, grain=8)
        assert int(solve_work(w.assignment).sum()) == int(
            solve_work(b.assignment).sum()
        )

    def test_single_proc(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 1)
        assert solve_balance(a).imbalance == 0.0


class TestSolveTraffic:
    def test_single_proc_zero(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 1)
        assert solve_traffic(a).total == 0

    def test_grows_with_procs(self, prepared_grid):
        t = [
            solve_traffic(wrap_assignment(prepared_grid.pattern, p)).total
            for p in (1, 2, 4, 8)
        ]
        assert t == sorted(t)

    def test_both_sweeps_more(self, prepared_grid):
        a = wrap_assignment(prepared_grid.pattern, 4)
        assert solve_traffic(a, both_sweeps=True).total >= solve_traffic(
            a, both_sweeps=False
        ).total

    def test_forward_sweep_brute_force(self, prepared_grid):
        """Forward-sweep fetches, recomputed literally."""
        pattern = prepared_grid.pattern
        a = wrap_assignment(pattern, 3)
        owner = a.owner_of_element
        diag_owner = owner[pattern.indptr[:-1]]
        cols = pattern.element_cols()
        x_reads = set()
        contribs = set()
        for e in range(pattern.nnz):
            i, j = int(pattern.rowidx[e]), int(cols[e])
            if i == j:
                continue
            p = int(owner[e])
            if p != int(diag_owner[j]):
                x_reads.add((p, j))
            acc = int(diag_owner[i])
            if acc != p:
                contribs.add((acc, i, p))
        expected = np.zeros(3, dtype=np.int64)
        for p, _ in x_reads:
            expected[p] += 1
        for acc, _, _ in contribs:
            expected[acc] += 1
        got = solve_traffic(a, both_sweeps=False)
        assert got.per_processor.tolist() == expected.tolist()

    def test_solve_phase_rebalances_block_scheme(self, prepared_lap30):
        """The paper's conclusion: the solve phase has a different (more
        forgiving) balance profile than the factorization for the block
        scheme, because solve work is proportional to nnz rather than to
        nnz-squared-per-column."""
        blk = block_mapping(prepared_lap30, 32, grain=25)
        factor_lam = blk.balance.imbalance
        solve_lam = solve_balance(blk.assignment).imbalance
        assert solve_lam != factor_lam  # distinct profiles, both defined
        assert solve_lam >= 0.0
