"""Shared fixtures and brute-force reference implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import prepare
from repro.sparse import grid5, grid9, spd_from_graph
from repro.sparse.pattern import LowerPattern, SymmetricGraph

# ----------------------------------------------------------------------
# Brute-force references (kept deliberately naive)
# ----------------------------------------------------------------------


def brute_force_fill(dense_bool: np.ndarray) -> np.ndarray:
    """Symbolic Cholesky by literal elimination on a dense boolean matrix.
    Returns the boolean lower-triangular structure of L (diag included)."""
    a = dense_bool.copy()
    n = a.shape[0]
    np.fill_diagonal(a, True)
    for k in range(n):
        rows = np.nonzero(a[k + 1 :, k])[0] + k + 1
        for i in rows:
            for j in rows:
                a[i, j] = True
    return np.tril(a)


def brute_force_etree(dense_lower: np.ndarray) -> np.ndarray:
    """parent[j] = min{i > j : L[i, j] != 0} on the *filled* structure."""
    filled = brute_force_fill(dense_lower | dense_lower.T)
    n = filled.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        below = np.nonzero(filled[j + 1 :, j])[0]
        if len(below):
            parent[j] = j + 1 + below[0]
    return parent


def brute_force_updates(pattern: LowerPattern) -> set[tuple[int, int, int]]:
    """All (i, j, k) pair updates, by triple loop."""
    out = set()
    dense = pattern.to_dense_bool()
    n = pattern.n
    for k in range(n):
        for j in range(k + 1, n):
            if not dense[j, k]:
                continue
            for i in range(j, n):
                if dense[i, k]:
                    out.add((i, j, k))
    return out


def brute_force_traffic(owner: np.ndarray, pattern: LowerPattern,
                        include_scale: bool = True) -> np.ndarray:
    """Distinct non-local element reads per processor, by literal walk."""
    nprocs = int(owner.max()) + 1 if len(owner) else 1
    dense = pattern.to_dense_bool()
    n = pattern.n
    eid = {}
    cols = pattern.element_cols()
    for e in range(pattern.nnz):
        eid[(int(pattern.rowidx[e]), int(cols[e]))] = e
    fetched: list[set[int]] = [set() for _ in range(nprocs)]
    for k in range(n):
        rows = [i for i in range(k + 1, n) if dense[i, k]]
        for j in rows:
            for i in rows:
                if i < j:
                    continue
                p = int(owner[eid[(i, j)]])
                for src in (eid[(i, k)], eid[(j, k)]):
                    if int(owner[src]) != p:
                        fetched[p].add(src)
    if include_scale:
        for (i, j), e in eid.items():
            p = int(owner[e])
            d = eid[(j, j)]
            if int(owner[d]) != p:
                fetched[p].add(d)
    return np.asarray([len(s) for s in fetched], dtype=np.int64)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _sandbox_run_registry(tmp_path, monkeypatch):
    """Point the obs run registry at a throwaway directory so tests that
    drive the CLI (sweep/bench targets record manifests) never write
    ``.repro/runs`` into the working tree."""
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "repro-runs"))


@pytest.fixture(scope="session")
def grid_graph() -> SymmetricGraph:
    return grid5(5, 5)


@pytest.fixture(scope="session")
def king_graph() -> SymmetricGraph:
    return grid9(6, 6)


@pytest.fixture(scope="session")
def small_spd():
    return spd_from_graph(grid5(4, 4), seed=11)


@pytest.fixture(scope="session")
def prepared_grid():
    """An MMD-ordered, symbolically-factored 8x8 9-point grid."""
    return prepare(grid9(8, 8), name="grid9(8,8)")


@pytest.fixture(scope="session")
def prepared_lap30():
    """The paper's LAP30 problem, prepared once per test session."""
    from repro.sparse import load

    return prepare(load("LAP30"), name="LAP30")


def random_connected_graph(n: int, extra: int, seed: int) -> SymmetricGraph:
    """Random spanning tree + ``extra`` chords (test workload helper)."""
    rng = np.random.default_rng(seed)
    us = [int(rng.integers(v)) for v in range(1, n)]
    vs = list(range(1, n))
    for _ in range(extra):
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a != b:
            us.append(a)
            vs.append(b)
    return SymmetricGraph.from_edges(n, np.asarray(us), np.asarray(vs))
