"""Permutation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import (
    identity_permutation,
    invert_permutation,
    is_permutation,
    random_permutation,
)


class TestIsPermutation:
    def test_valid(self):
        assert is_permutation([2, 0, 1])

    def test_duplicate(self):
        assert not is_permutation([0, 0, 1])

    def test_out_of_range(self):
        assert not is_permutation([0, 1, 3])

    def test_length_mismatch(self):
        assert not is_permutation([0, 1], n=3)

    def test_empty(self):
        assert is_permutation([])


class TestInvert:
    def test_identity(self):
        p = identity_permutation(4)
        assert np.array_equal(invert_permutation(p), p)

    def test_inverse_property(self):
        p = np.array([2, 0, 3, 1])
        inv = invert_permutation(p)
        assert np.array_equal(inv[p], np.arange(4))
        assert np.array_equal(p[inv], np.arange(4))

    @given(st.integers(1, 50), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_double_inverse(self, n, seed):
        p = random_permutation(n, seed)
        assert np.array_equal(invert_permutation(invert_permutation(p)), p)


class TestRandom:
    def test_is_permutation(self):
        assert is_permutation(random_permutation(20, seed=3))

    def test_deterministic(self):
        assert np.array_equal(random_permutation(10, 5), random_permutation(10, 5))
