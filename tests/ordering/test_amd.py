"""Approximate minimum degree."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import (
    approximate_minimum_degree,
    is_permutation,
    multiple_minimum_degree,
)
from repro.sparse import grid5, grid9, path_graph, star_graph
from repro.sparse.pattern import SymmetricGraph
from repro.symbolic import fill_in

from ..conftest import random_connected_graph


class TestAMD:
    def test_path_no_fill(self):
        g = path_graph(12)
        perm = approximate_minimum_degree(g)
        assert is_permutation(perm)
        assert fill_in(g, perm) == 0

    def test_star_no_fill(self):
        g = star_graph(9)
        assert fill_in(g, approximate_minimum_degree(g)) == 0

    def test_empty(self):
        assert len(approximate_minimum_degree(SymmetricGraph.empty(0))) == 0

    def test_isolated_nodes(self):
        g = SymmetricGraph.empty(5)
        assert is_permutation(approximate_minimum_degree(g))

    def test_grid_fill_comparable_to_mmd(self):
        g = grid9(12, 12)
        f_amd = fill_in(g, approximate_minimum_degree(g))
        f_mmd = fill_in(g, multiple_minimum_degree(g))
        # AMD's degree is an upper bound, so fill can differ, but must
        # stay in the same class.
        assert f_amd <= 1.5 * f_mmd

    def test_beats_natural_on_grid(self):
        g = grid5(10, 10)
        natural = fill_in(g, np.arange(g.n))
        assert fill_in(g, approximate_minimum_degree(g)) < 0.6 * natural

    def test_deterministic(self):
        g = grid9(7, 7)
        assert np.array_equal(
            approximate_minimum_degree(g), approximate_minimum_degree(g)
        )

    def test_registry_exposes_amd(self):
        from repro.ordering import order

        g = grid5(5, 5)
        assert is_permutation(order(g, "amd"))

    @given(st.integers(2, 25), st.integers(0, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_always_a_permutation(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        assert is_permutation(approximate_minimum_degree(g))

    @given(st.integers(3, 18), st.integers(0, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_fill_bounded_property(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        f = fill_in(g, approximate_minimum_degree(g))
        assert 0 <= f <= n * (n - 1) // 2
