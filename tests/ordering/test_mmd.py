"""Minimum degree and multiple minimum degree orderings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import (
    is_permutation,
    minimum_degree,
    multiple_minimum_degree,
    multiple_minimum_degree_reference,
)
from repro.sparse import band_graph, band_lower_pattern, grid5, grid9, path_graph, star_graph
from repro.sparse import harwell_boeing as hb
from repro.sparse.pattern import SymmetricGraph
from repro.symbolic import fill_in

from ..conftest import random_connected_graph


class TestMinimumDegree:
    def test_path_no_fill(self):
        g = path_graph(10)
        perm = minimum_degree(g)
        assert is_permutation(perm)
        assert fill_in(g, perm) == 0

    def test_star_no_fill(self):
        # Eliminating leaves first leaves the hub for last: zero fill.
        g = star_graph(8)
        perm = minimum_degree(g)
        assert fill_in(g, perm) == 0
        # The hub is eliminated only once it reaches minimum degree —
        # among the last two nodes remaining.
        assert 0 in perm[-2:]

    def test_empty_graph(self):
        g = SymmetricGraph.empty(5)
        assert is_permutation(minimum_degree(g))

    def test_reduces_grid_fill_vs_natural(self):
        g = grid5(8, 8)
        natural = fill_in(g, np.arange(g.n))
        md = fill_in(g, minimum_degree(g))
        assert md < natural

    @given(st.integers(2, 25), st.integers(0, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_always_a_permutation(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        assert is_permutation(minimum_degree(g))


class TestMultipleMinimumDegree:
    def test_path_no_fill(self):
        g = path_graph(12)
        assert fill_in(g, multiple_minimum_degree(g)) == 0

    def test_tree_no_fill(self):
        g = random_connected_graph(40, 0, seed=3)  # a random tree
        assert fill_in(g, multiple_minimum_degree(g)) == 0

    def test_empty_n(self):
        assert len(multiple_minimum_degree(SymmetricGraph.empty(0))) == 0

    def test_isolated_nodes(self):
        g = SymmetricGraph.empty(4)
        assert is_permutation(multiple_minimum_degree(g))

    def test_comparable_to_md_on_grid(self):
        g = grid5(10, 10)
        f_md = fill_in(g, minimum_degree(g))
        f_mmd = fill_in(g, multiple_minimum_degree(g))
        # MMD's multiple elimination may differ slightly but must stay in
        # the same fill class (well under natural-ordering fill).
        natural = fill_in(g, np.arange(g.n))
        assert f_mmd < natural / 2
        assert f_mmd <= 2 * max(f_md, 1)

    def test_lap30_fill_near_paper(self):
        from repro.symbolic import factor_nnz

        g = grid9(30, 30)
        nnzl = factor_nnz(g, multiple_minimum_degree(g))
        # Paper: 16697 with Liu's code; tie-breaking differences allowed.
        assert 14000 <= nnzl <= 20000

    def test_delta_parameter(self):
        g = grid5(6, 6)
        for delta in (0, 1, 2):
            assert is_permutation(multiple_minimum_degree(g, delta=delta))

    def test_deterministic(self):
        g = grid9(7, 7)
        assert np.array_equal(
            multiple_minimum_degree(g), multiple_minimum_degree(g)
        )

    @given(st.integers(2, 25), st.integers(0, 25), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_always_a_permutation(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        assert is_permutation(multiple_minimum_degree(g))

    @given(st.integers(3, 15), st.integers(0, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_never_worse_than_reverse_natural_much(self, n, extra, seed):
        """MMD fill is bounded by a dense factor (sanity envelope)."""
        g = random_connected_graph(n, extra, seed)
        f = fill_in(g, multiple_minimum_degree(g))
        assert 0 <= f <= n * (n - 1) // 2


class TestMMDIdentity:
    """The fast MMD must return the identical permutation to the
    set-based reference — same passes, tie-breaking, and merge order."""

    @pytest.mark.parametrize("name", hb.names())
    def test_identical_on_paper_matrices(self, name):
        g = hb.load(name)
        np.testing.assert_array_equal(
            multiple_minimum_degree(g), multiple_minimum_degree_reference(g)
        )

    @pytest.mark.parametrize("delta", [0, 1, 2])
    def test_identical_on_band_graph(self, delta):
        g = band_graph(220, 13)
        np.testing.assert_array_equal(
            multiple_minimum_degree(g, delta=delta),
            multiple_minimum_degree_reference(g, delta=delta),
        )

    def test_identical_on_band_pattern_graph(self):
        g = band_lower_pattern(150, 9).to_symmetric_graph()
        np.testing.assert_array_equal(
            multiple_minimum_degree(g), multiple_minimum_degree_reference(g)
        )

    @given(
        st.integers(2, 40),
        st.integers(0, 60),
        st.integers(0, 2**31 - 1),
        st.integers(0, 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_identical_on_random_graphs(self, n, extra, seed, delta):
        g = random_connected_graph(n, extra, seed)
        np.testing.assert_array_equal(
            multiple_minimum_degree(g, delta=delta),
            multiple_minimum_degree_reference(g, delta=delta),
        )

    @pytest.mark.parametrize("name", ["DWT512", "CANN1072"])
    def test_arena_path_identical(self, name, monkeypatch):
        """Force the CSR-arena path (normally n > _BITSET_MAX_N) and
        check it too matches the reference."""
        from repro.ordering import mmd as mmd_mod

        monkeypatch.setattr(mmd_mod, "_BITSET_MAX_N", 0)
        g = hb.load(name)
        np.testing.assert_array_equal(
            multiple_minimum_degree(g), multiple_minimum_degree_reference(g)
        )

    def test_arena_path_identical_random(self, monkeypatch):
        from repro.ordering import mmd as mmd_mod

        monkeypatch.setattr(mmd_mod, "_BITSET_MAX_N", 0)
        for seed in range(6):
            g = random_connected_graph(30, 45, seed)
            for delta in (0, 1, 2):
                np.testing.assert_array_equal(
                    multiple_minimum_degree(g, delta=delta),
                    multiple_minimum_degree_reference(g, delta=delta),
                )
