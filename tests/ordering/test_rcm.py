"""Reverse Cuthill-McKee."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import (
    bandwidth,
    is_permutation,
    pseudo_peripheral_node,
    random_permutation,
    reverse_cuthill_mckee,
)
from repro.sparse import grid5, path_graph
from repro.sparse.pattern import SymmetricGraph

from ..conftest import random_connected_graph


class TestBandwidth:
    def test_path_natural(self):
        assert bandwidth(path_graph(6)) == 1

    def test_empty(self):
        assert bandwidth(SymmetricGraph.empty(4)) == 0

    def test_permuted(self):
        g = path_graph(4)
        assert bandwidth(g, perm=[0, 2, 1, 3]) == 2


class TestPseudoPeripheral:
    def test_path_finds_endpoint(self):
        g = path_graph(9)
        assert pseudo_peripheral_node(g, 4) in (0, 8)

    def test_returns_start_on_star(self):
        from repro.sparse import star_graph

        g = star_graph(5)
        node = pseudo_peripheral_node(g, 0)
        assert 0 <= node < 5


class TestRCM:
    def test_is_permutation(self):
        g = grid5(6, 4)
        assert is_permutation(reverse_cuthill_mckee(g))

    def test_reduces_bandwidth_vs_random(self):
        g = grid5(8, 8)
        shuffled = g.permute(random_permutation(g.n, seed=1))
        before = bandwidth(shuffled)
        after = bandwidth(shuffled, perm=reverse_cuthill_mckee(shuffled))
        assert after < before

    def test_grid_bandwidth_near_optimal(self):
        g = grid5(10, 5)
        # Optimal bandwidth of a 10x5 grid is 5; RCM should be close.
        assert bandwidth(g, perm=reverse_cuthill_mckee(g)) <= 8

    def test_disconnected(self):
        g = SymmetricGraph.from_edges(6, [0, 3], [1, 4])
        assert is_permutation(reverse_cuthill_mckee(g))

    def test_isolated_nodes(self):
        assert is_permutation(reverse_cuthill_mckee(SymmetricGraph.empty(3)))

    @given(st.integers(2, 30), st.integers(0, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_always_a_permutation(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        assert is_permutation(reverse_cuthill_mckee(g))
