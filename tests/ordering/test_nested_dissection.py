"""Nested dissection ordering."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import is_permutation, nested_dissection
from repro.sparse import grid5, path_graph
from repro.sparse.pattern import SymmetricGraph
from repro.symbolic import fill_in

from ..conftest import random_connected_graph


class TestNestedDissection:
    def test_is_permutation(self):
        g = grid5(7, 7)
        assert is_permutation(nested_dissection(g))

    def test_small_falls_back_to_md(self):
        g = path_graph(10)
        perm = nested_dissection(g, leaf_size=32)
        assert is_permutation(perm)
        assert fill_in(g, perm) == 0

    def test_grid_fill_beats_natural(self):
        g = grid5(12, 12)
        nd = fill_in(g, nested_dissection(g, leaf_size=16))
        natural = fill_in(g, np.arange(g.n))
        assert nd < natural

    def test_disconnected(self):
        g = SymmetricGraph.from_edges(8, [0, 1, 4, 5], [1, 2, 5, 6])
        assert is_permutation(nested_dissection(g, leaf_size=2))

    @given(st.integers(2, 40), st.integers(0, 15), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_always_a_permutation(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        assert is_permutation(nested_dissection(g, leaf_size=8))
