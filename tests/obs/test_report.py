"""obs.report: the self-contained HTML run report."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.obs import runs
from repro.obs.histogram import Histogram
from repro.obs.report import build_report, downsample, render_report


def _hist_doc():
    h = Histogram()
    for v in (1.0, 2.0, 4.0, 40.0):
        h.observe(v)
    return h.to_dict()


def _manifest(**over):
    doc = {
        "run_id": "sweep-20260808T120000-abc123",
        "kind": "sweep",
        "created": "2026-08-08 12:00:00",
        "created_unix": 1000.0,
        "git_sha": "deadbeefcafe",
        "host": {"hostname": "ci-box", "platform": "Linux", "python": "3.12",
                 "cpus": 8},
        "config": {"matrices": ["DWT512"], "jobs": 2},
        "matrices": {
            "DWT512": {
                "stages": {"order": 0.01, "symbolic": 0.02, "schedule": 0.005},
                "wall_total": 0.04,
                "mem_peak_mb": 88.5,
                "stage_mem_peak_mb": {"order": 70.0, "symbolic": 88.5},
                "memory": [[0.0, 60.0], [0.1, 88.5], [0.2, 80.0]],
            }
        },
        "memory": [[0.0, 55.0], [0.5, 90.0], [1.0, 85.0]],
        "histograms": {"perf.sweep.unit_ms": _hist_doc()},
        "records": [
            {"matrix": "DWT512", "scheme": s, "nprocs": p, "grain": 4,
             "traffic_total": 100.0 * p * (1.5 if s == "wrap" else 1.0),
             "imbalance": 1.2}
            for s in ("block", "wrap") for p in (2, 4, 8)
        ],
        "profile": {"hz": 200.0, "duration_s": 1.0, "nsamples": 200,
                    "top": [{"span": "pipeline.order", "func": "mmd (a/b.py:1)",
                             "samples": 120, "pct": 60.0, "est_s": 0.6}]},
        "wall_s": 1.0,
    }
    doc.update(over)
    return doc


#: Anything that would make the report reach off-disk.
_EXTERNAL = re.compile(
    r"https?://|<script\s+[^>]*src|<link\b|<img\b|url\(|@import", re.I
)


class TestDownsample:
    def test_short_series_untouched(self):
        samples = [(0.0, 1), (1.0, 2)]
        assert downsample(samples, limit=400) == samples

    def test_respects_limit_and_keeps_endpoints(self):
        samples = [(float(i), i) for i in range(5000)]
        out = downsample(samples, limit=100)
        assert len(out) <= 102  # limit chunks + first and last raw points
        assert out[0] == samples[0] and out[-1] == samples[-1]

    def test_preserves_the_peak(self):
        samples = [(float(i), 10) for i in range(1000)]
        samples[417] = (417.0, 9999)  # a spike a naive stride would skip
        out = downsample(samples, limit=50)
        assert max(v for _, v in out) == 9999

    def test_output_stays_time_sorted(self):
        samples = [(float(i), i % 7) for i in range(1000)]
        out = downsample(samples, limit=64)
        assert out == sorted(out)


class TestBuildReport:
    @pytest.fixture(scope="class")
    def html(self):
        return build_report(_manifest())

    def test_self_contained(self, html):
        assert not _EXTERNAL.search(html)
        assert "<style>" in html  # CSS is inlined, not linked

    def test_every_panel_renders(self, html):
        for heading in ("Stage timings", "Memory", "Sweep", "Histogram",
                        "Profile"):
            assert heading.lower() in html.lower(), heading

    def test_header_carries_provenance(self, html):
        assert "sweep-20260808T120000-abc123" in html
        assert "deadbeef" in html and "ci-box" in html

    def test_svg_is_well_formed(self, html):
        svgs = re.findall(r"<svg.*?</svg>", html, re.S)
        assert svgs, "expected inline SVG charts"
        for svg in svgs:
            ET.fromstring(svg)  # raises on malformed markup
            assert "NaN" not in svg and "Infinity" not in svg

    def test_schemes_get_fixed_colors_and_legend(self, html):
        assert "block" in html and "wrap" in html
        assert "legend" in html

    def test_tables_accompany_charts(self, html):
        assert html.count("<details") >= 2  # table views for the data

    def test_dark_mode_is_selected_not_flipped(self, html):
        assert "prefers-color-scheme" in html
        assert "data-theme" in html

    def test_delta_panel_needs_a_previous_run(self):
        base = _manifest()
        prev = _manifest(run_id="sweep-20260808T110000-000000",
                         created_unix=500.0)
        for entry in prev["matrices"].values():
            entry["stages"] = {k: v / 2 for k, v in entry["stages"].items()}
            entry["wall_total"] /= 2
        alone = build_report(base)
        paired = build_report(base, previous=prev)
        assert "vs previous" in paired.lower() or "delta" in paired.lower()
        assert len(paired) > len(alone)

    def test_empty_manifest_renders_fallback(self):
        html = build_report({"run_id": "x", "kind": "bench"})
        assert "no renderable panels" in html
        assert not _EXTERNAL.search(html)

    def test_hostile_strings_are_escaped(self):
        doc = _manifest(run_id="<script>alert(1)</script>")
        html = build_report(doc)
        assert "<script>" not in html


class TestRenderReport:
    def test_latest_run_from_registry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "reg"))
        runs.record_run("sweep", matrices=_manifest()["matrices"],
                        extra={"memory": _manifest()["memory"]})
        out = render_report(None, out=tmp_path / "REPORT.html")
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert not _EXTERNAL.search(html)
        assert "DWT512" in html

    def test_previous_same_kind_run_feeds_the_delta(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "reg"))
        slow = {"DWT512": {"stages": {"order": 0.02}, "wall_total": 0.02}}
        fast = {"DWT512": {"stages": {"order": 0.01}, "wall_total": 0.01}}
        runs.record_run("bench", matrices=slow)
        runs.record_run("bench", matrices=fast)
        out = render_report("bench:latest", out=tmp_path / "R.html")
        assert "vs previous" in out.read_text().lower()

    def test_unknown_ref_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "reg"))
        with pytest.raises(ValueError):
            render_report("no-such-run", out=tmp_path / "R.html")

    def test_cli_report_latest(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "reg"))
        monkeypatch.chdir(tmp_path)
        runs.record_run("sweep", matrices=_manifest()["matrices"])
        assert main(["report", "--latest"]) == 0
        assert "REPORT.html" in capsys.readouterr().out
        assert (tmp_path / "REPORT.html").exists()
