"""obs.runs: the persistent run registry and its CLI/regression gate."""

import json

import pytest

from repro.cli import main
from repro.obs import runs


@pytest.fixture
def registry(tmp_path, monkeypatch):
    root = tmp_path / "registry"
    monkeypatch.setenv("REPRO_RUNS_DIR", str(root))
    return root


def _stages(scale=1.0):
    return {"order": 0.010 * scale, "symbolic": 0.020 * scale,
            "schedule": 0.030 * scale}


def _manifest_matrices(scale=1.0):
    return {"LAP30": {"stages": _stages(scale), "wall_total": 0.100 * scale}}


class TestRecordRun:
    def test_appends_one_json_line(self, registry):
        m = runs.record_run("sweep", config={"jobs": 2},
                            matrices=_manifest_matrices(), wall_s=0.1)
        assert m is not None
        assert m["kind"] == "sweep" and m["run_id"].startswith("sweep-")
        assert m["schema_version"] == runs.RUNS_SCHEMA_VERSION
        lines = (registry / "sweep.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["run_id"] == m["run_id"]

    def test_run_ids_are_unique(self, registry):
        ids = {runs.record_run("bench")["run_id"] for _ in range(5)}
        assert len(ids) == 5

    def test_unwritable_root_returns_none(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        assert runs.record_run("sweep", root=blocker) is None

    def test_extra_keys_land_in_the_manifest(self, registry):
        m = runs.record_run("sweep", extra={"cells": 12})
        assert m["cells"] == 12

    def test_manifest_carries_host_provenance(self, registry):
        m = runs.record_run("sweep")
        host = m["host"]
        assert set(host) == {"hostname", "platform", "python", "cpus"}
        assert host["python"].count(".") == 2
        assert host["cpus"] >= 1
        # v1 manifests (no host key) must still load and compare.
        assert runs.RUNS_SCHEMA_VERSION == 2


class TestListRuns:
    def test_empty_registry(self, registry):
        assert runs.list_runs() == []

    def test_oldest_first_across_kinds(self, registry):
        a = runs.record_run("sweep")
        b = runs.record_run("bench")
        listed = runs.list_runs()
        assert [m["run_id"] for m in listed] == [a["run_id"], b["run_id"]]

    def test_kind_filter(self, registry):
        runs.record_run("sweep")
        b = runs.record_run("bench")
        assert [m["run_id"] for m in runs.list_runs(kind="bench")] == [b["run_id"]]

    def test_corrupt_lines_skipped(self, registry):
        m = runs.record_run("sweep")
        with open(registry / "sweep.jsonl", "a") as fh:
            fh.write("{not json}\n\n")
        assert [x["run_id"] for x in runs.list_runs()] == [m["run_id"]]

    def test_same_second_ties_broken_by_run_id(self, registry):
        """created_unix has one-second granularity in the human stamp;
        same-timestamp manifests must still list in one deterministic
        order (by run id), so CI log diffs are stable."""
        docs = [
            {"kind": "sweep", "created_unix": 100.0, "run_id": f"sweep-x-{c}"}
            for c in "cab"
        ]
        registry.mkdir(parents=True, exist_ok=True)
        with open(registry / "sweep.jsonl", "w") as fh:
            for d in docs:
                fh.write(json.dumps(d) + "\n")
        listed = [m["run_id"] for m in runs.list_runs()]
        assert listed == ["sweep-x-a", "sweep-x-b", "sweep-x-c"]

    def test_explain_kind_filter(self, registry):
        runs.record_run("bench")
        e = runs.record_run("explain", extra={"explain": {"makespan": 1.0}})
        listed = runs.list_runs(kind="explain")
        assert [m["run_id"] for m in listed] == [e["run_id"]]
        assert listed[0]["explain"] == {"makespan": 1.0}


class TestLoadRun:
    def test_latest(self, registry):
        runs.record_run("sweep")
        b = runs.record_run("bench")
        assert runs.load_run("latest")["run_id"] == b["run_id"]

    def test_kind_latest(self, registry):
        a = runs.record_run("sweep")
        runs.record_run("bench")
        assert runs.load_run("sweep:latest")["run_id"] == a["run_id"]

    def test_exact_id_and_unique_prefix(self, registry):
        a = runs.record_run("sweep")
        assert runs.load_run(a["run_id"]) == a
        prefix = a["run_id"][: len("sweep-") + 10]
        assert runs.load_run(prefix) == a

    def test_ambiguous_prefix_rejected(self, registry):
        runs.record_run("sweep")
        runs.record_run("sweep")
        with pytest.raises(ValueError, match="ambiguous"):
            runs.load_run("sweep-")

    def test_unknown_ref_rejected(self, registry):
        with pytest.raises(ValueError, match="no run or file"):
            runs.load_run("nonexistent-run")

    def test_file_path_loads_a_manifest(self, registry, tmp_path):
        m = runs.record_run("sweep", matrices=_manifest_matrices())
        path = tmp_path / "copy.json"
        path.write_text(json.dumps(m))
        assert runs.load_run(str(path)) == m

    def test_bench_report_file_is_wrapped(self, tmp_path):
        report = {"matrices": _manifest_matrices(), "smoke": True, "repeats": 1}
        path = tmp_path / "BENCH_pipeline.json"
        path.write_text(json.dumps(report))
        doc = runs.load_run(str(path))
        assert doc["kind"] == "bench-report"
        assert doc["matrices"] == report["matrices"]
        assert doc["config"]["smoke"] is True


class TestCompare:
    def test_stage_rows(self):
        old = {"matrices": _manifest_matrices(1.0)}
        new = {"matrices": _manifest_matrices(2.0)}
        rows = runs.compare_runs(old, new)
        by_stage = {r["stage"]: r for r in rows}
        assert by_stage["order"]["baseline_s"] == pytest.approx(0.010)
        assert by_stage["order"]["current_s"] == pytest.approx(0.020)

    def test_sweep_shape_dispatch(self):
        def entry(scale):
            return {"DWT512": {"wall_noreuse": 0.2 * scale,
                               "wall_reuse": 0.1 * scale}}

        rows = runs.compare_runs({"matrices": entry(1)}, {"matrices": entry(2)})
        assert {r["stage"] for r in rows} == {"wall_noreuse", "wall_reuse"}

    def test_regressions_beyond_threshold_only(self):
        old = {"matrices": _manifest_matrices(1.0)}
        barely = {"matrices": _manifest_matrices(1.20)}  # +20% < 25% gate
        badly = {"matrices": _manifest_matrices(1.60)}
        assert runs.find_run_regressions(old, barely) == []
        found = runs.find_run_regressions(old, badly)
        assert found and any("order" in line for line in found)

    def test_custom_threshold(self):
        old = {"matrices": _manifest_matrices(1.0)}
        new = {"matrices": _manifest_matrices(1.20)}
        assert runs.find_run_regressions(old, new, threshold=0.10)

    def test_render_run_delta_mentions_stages(self):
        old = {"matrices": _manifest_matrices(1.0)}
        new = {"matrices": _manifest_matrices(1.5)}
        assert "LAP30" in runs.render_run_delta(old, new)


class TestRender:
    def test_runs_table_empty(self):
        assert runs.render_runs_table([]) == "(no recorded runs)"

    def test_runs_table_lists_every_run(self, registry):
        a = runs.record_run("sweep", matrices=_manifest_matrices(), wall_s=1.0)
        text = runs.render_runs_table(runs.list_runs())
        assert a["run_id"] in text and "LAP30" in text

    def test_show_round_trips_json(self, registry):
        a = runs.record_run("sweep")
        assert json.loads(runs.render_run(a)) == a


class TestMemoryRegressionGate:
    """Peak-RSS rides the same compare/gate machinery as timings: a run
    that got >=25% hungrier fails ``runs compare --fail-on-regression``
    even when every stage got faster."""

    @staticmethod
    def _with_mem(scale, mem_mb):
        matrices = _manifest_matrices(scale)
        matrices["LAP30"]["mem_peak_mb"] = mem_mb
        return {"matrices": matrices}

    def test_memory_rows_carry_the_mb_unit(self):
        rows = runs.compare_runs(self._with_mem(1.0, 100.0),
                                 self._with_mem(1.0, 140.0))
        (mem,) = [r for r in rows if r["stage"] == "mem_peak"]
        assert mem["unit"] == "mb"
        assert mem["baseline_s"] == 100.0 and mem["current_s"] == 140.0

    def test_injected_memory_regression_fails_the_gate(self, tmp_path):
        from repro.cli import main

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        # Timings *improve* 2x while memory blows up 40% — the gate must
        # still fail, and on the memory row specifically.
        old.write_text(json.dumps(self._with_mem(1.0, 100.0)))
        new.write_text(json.dumps(self._with_mem(0.5, 140.0)))
        assert main(["runs", "compare", str(old), str(new),
                     "--fail-on-regression"]) == 1

    def test_memory_within_threshold_passes(self, tmp_path):
        from repro.cli import main

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(self._with_mem(1.0, 100.0)))
        new.write_text(json.dumps(self._with_mem(1.0, 110.0)))  # +10% < 25%
        assert main(["runs", "compare", str(old), str(new),
                     "--fail-on-regression"]) == 0

    def test_regression_message_speaks_megabytes(self):
        found = runs.find_run_regressions(self._with_mem(1.0, 100.0),
                                          self._with_mem(1.0, 160.0))
        (line,) = [l for l in found if "mem_peak" in l]
        assert "MB" in line and "more memory" in line

    def test_runs_without_memory_fields_are_unaffected(self):
        old = {"matrices": _manifest_matrices(1.0)}
        new = {"matrices": _manifest_matrices(1.0)}
        rows = runs.compare_runs(old, new)
        assert all(r["stage"] != "mem_peak" for r in rows)


def _report_file(tmp_path, name, scale):
    path = tmp_path / name
    path.write_text(json.dumps({"matrices": _manifest_matrices(scale)}))
    return str(path)


class TestRunsCli:
    def test_list_and_show(self, registry, capsys):
        m = runs.record_run("sweep")
        assert main(["runs", "list"]) == 0
        assert m["run_id"] in capsys.readouterr().out
        assert main(["runs", "show", "latest"]) == 0
        assert json.loads(capsys.readouterr().out)["run_id"] == m["run_id"]

    def test_show_unknown_ref_is_an_error(self, registry, capsys):
        assert main(["runs", "show", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_compare_gate_fails_on_regression(self, registry, tmp_path, capsys):
        old = _report_file(tmp_path, "old.json", 1.0)
        new = _report_file(tmp_path, "new.json", 1.60)  # >25% slower
        assert main(["runs", "compare", old, new, "--fail-on-regression"]) == 1
        out = capsys.readouterr().out
        assert "regressions" in out and "slower" in out

    def test_compare_gate_passes_within_threshold(self, registry, tmp_path, capsys):
        old = _report_file(tmp_path, "old.json", 1.0)
        new = _report_file(tmp_path, "new.json", 1.10)
        assert main(["runs", "compare", old, new, "--fail-on-regression"]) == 0
        assert "no stage regressions" in capsys.readouterr().out

    def test_compare_without_gate_reports_but_passes(self, registry, tmp_path):
        old = _report_file(tmp_path, "old.json", 1.0)
        new = _report_file(tmp_path, "new.json", 2.0)
        assert main(["runs", "compare", old, new]) == 0

    def test_compare_custom_threshold(self, registry, tmp_path):
        old = _report_file(tmp_path, "old.json", 1.0)
        new = _report_file(tmp_path, "new.json", 1.15)
        assert main(["runs", "compare", old, new,
                     "--fail-on-regression", "--threshold", "0.10"]) == 1

    def test_sweep_records_a_manifest(self, registry, tmp_path, capsys):
        out = main(["sweep", "--matrix", "DWT512", "--procs", "2",
                    "--grains", "4", "-q",
                    "--cache-dir", str(tmp_path / "cache")])
        assert out == 0
        (m,) = runs.list_runs(kind="sweep")
        assert m["config"]["matrices"] == ["DWT512"]
        assert m["cells"] == 2  # block + wrap at P=2
        assert m["wall_s"] > 0
        assert "stages" in m["matrices"]["DWT512"]
