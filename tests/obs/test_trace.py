"""The recording core: spans, counters, gauges, enable/disable."""

import threading

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_state():
    """Every test starts and ends with tracing globally disabled."""
    trace.disable()
    yield
    trace.disable()


class TestSpans:
    def test_span_records_name_and_duration(self):
        with trace.enabled() as rec:
            with trace.span("work", matrix="LAP30"):
                pass
        (s,) = rec.spans
        assert s.name == "work"
        assert s.args == {"matrix": "LAP30"}
        assert s.end >= s.start
        assert s.error is None

    def test_spans_nest_with_depths(self):
        with trace.enabled() as rec:
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
                with trace.span("inner2"):
                    pass
        by_name = {s.name: s for s in rec.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner2"].depth == 1
        # Inner spans complete first and sit inside the outer interval.
        assert rec.spans[0].name == "inner"
        assert by_name["outer"].start <= by_name["inner"].start
        assert by_name["inner"].end <= by_name["outer"].end

    def test_span_survives_exception_and_reraises(self):
        with trace.enabled() as rec:
            with pytest.raises(RuntimeError):
                with trace.span("outer"):
                    with trace.span("boom"):
                        raise RuntimeError("kaput")
        by_name = {s.name: s for s in rec.spans}
        assert by_name["boom"].error == "RuntimeError"
        assert by_name["outer"].error == "RuntimeError"
        # The stack unwound fully: a following span is top-level again.
        with trace.enabled(rec):
            with trace.span("after"):
                pass
        assert {s.name: s.depth for s in rec.spans}["after"] == 0

    def test_threads_nest_independently(self):
        with trace.enabled() as rec:
            def worker():
                with trace.span("thread-span"):
                    pass

            with trace.span("main-span"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        by_name = {s.name: s for s in rec.spans}
        # The worker's span is depth 0 in its own thread, not nested
        # under the main thread's open span.
        assert by_name["thread-span"].depth == 0
        assert by_name["thread-span"].thread != by_name["main-span"].thread


class TestDisabled:
    def test_disabled_emits_nothing(self):
        rec = trace.Recorder()
        trace.set_recorder(rec)
        with trace.span("work"):
            trace.counter("n", 5)
            trace.gauge("g", 1.5)
            trace.timeline_event("u", ts=0, dur=1, lane=0)
        assert rec.is_empty()

    def test_disabled_span_is_shared_noop(self):
        assert trace.span("a") is trace.span("b")

    def test_enable_disable_roundtrip(self):
        assert not trace.is_enabled()
        rec = trace.enable()
        assert trace.is_enabled()
        assert trace.get_recorder() is rec
        trace.disable()
        assert not trace.is_enabled()

    def test_enabled_context_restores_prior_state(self):
        outer = trace.enable(trace.Recorder())
        with trace.enabled() as inner:
            assert trace.get_recorder() is inner
            assert inner is not outer
        assert trace.is_enabled()
        assert trace.get_recorder() is outer
        trace.disable()


class TestScalars:
    def test_counters_accumulate(self):
        with trace.enabled() as rec:
            trace.counter("units")
            trace.counter("units", 4)
            trace.counter("zeros", 0)
        assert rec.counters == {"units": 5, "zeros": 0}

    def test_gauges_keep_last_value(self):
        with trace.enabled() as rec:
            trace.gauge("marker", 1)
            trace.gauge("marker", 7)
        assert rec.gauges == {"marker": 7}

    def test_timeline_events(self):
        with trace.enabled() as rec:
            trace.timeline_event("unit 0", ts=2.0, dur=3.0, lane=1, uid=0)
        (e,) = rec.timeline
        assert (e.name, e.ts, e.dur, e.lane) == ("unit 0", 2.0, 3.0, 1)
        assert e.args == {"uid": 0}

    def test_counters_are_thread_safe(self):
        with trace.enabled() as rec:
            threads = [
                threading.Thread(
                    target=lambda: [trace.counter("hits") for _ in range(500)]
                )
                for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert rec.counters["hits"] == 4000
