"""Invariants of the simulated-clock telemetry layer.

The exact-equality assertions are deliberate: the default machine model
(compute=1, α=10, β=1) with integer work gives integer-valued float sim
times, so conservation laws hold bit-for-bit, not approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import prepared_matrix
from repro.core.pipeline import block_mapping, wrap_mapping
from repro.machine.simulate import simulate_assignment
from repro.machine.traffic import communication_matrix, data_traffic
from repro.obs import trace as obs
from repro.obs.simtime import (
    REASON_MSG,
    REASON_NONE,
    MessageLedger,
    SimRun,
    ledger_run,
)
from repro.sparse.harwell_boeing import names as paper_names

SCHEMES = ("wrap", "block")
PROCS = (16, 64)


@pytest.fixture(scope="module", autouse=True)
def _release_experiment_caches():
    """This module fills the unbounded experiment lru caches with every
    bundled matrix × P∈{16, 64}; drop them afterwards so later
    timing-sensitive tests (profiler overhead) run on a normal heap."""
    from repro.analysis import experiments

    yield
    experiments.prepared_matrix.cache_clear()
    experiments._block_result.cache_clear()
    experiments._wrap_result.cache_clear()


def _mapping(prep, scheme: str, nprocs: int):
    if scheme == "block":
        return block_mapping(prep, nprocs, grain=4)
    return wrap_mapping(prep, nprocs)


def _sim(matrix: str, scheme: str, nprocs: int):
    prep = prepared_matrix(matrix)
    res = _mapping(prep, scheme, nprocs)
    deps = res.dependencies if scheme == "block" else None
    timeline, run = simulate_assignment(
        res.assignment, prep.updates, deps=deps, name=matrix
    )
    return prep, res, timeline, run


@pytest.mark.parametrize("matrix", paper_names())
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("nprocs", PROCS)
def test_simtime_invariants(matrix, scheme, nprocs):
    prep, res, timeline, run = _sim(matrix, scheme, nprocs)

    # Message conservation: every machine-model message is delivered,
    # and the ledger total bit-matches the paper's data-traffic metric
    # (same dedup rule: distinct non-local (processor, element) pairs).
    traffic = data_traffic(res.assignment, prep.updates)
    assert all(m.recv is not None for m in run.messages)
    assert run.total_message_bytes() == traffic.total
    per_dst = np.zeros(nprocs, dtype=np.int64)
    for m in run.messages:
        per_dst[m.dst] += m.nbytes
    assert np.array_equal(per_dst, np.asarray(traffic.per_processor))
    assert np.array_equal(
        run.comm_matrix(), communication_matrix(res.assignment, prep.updates)
    )

    # busy + wait + idle == makespan, exactly, on every processor.
    pt = run.proc_times()
    assert np.all(pt.busy + pt.wait + pt.idle == timeline.makespan)

    # The critical path telescopes to the simulated makespan exactly.
    cp = run.critical_path()
    assert cp.length == timeline.makespan
    assert cp.compute + cp.wait == cp.length
    assert len(cp.edges) == len(cp.units) - 1
    # The first unit on the path started unforced.
    assert run.reason_kind[cp.units[0]] == REASON_NONE

    # λ attribution: stage excesses sum to λ · mean work.
    att = run.imbalance()
    total_excess = sum(row["excess"] for row in att.stage_rows)
    assert total_excess == pytest.approx(att.imbalance * att.mean_work)


def test_machine_run_records_into_recorder():
    prep = prepared_matrix("LAP30")
    res = block_mapping(prep, 16, grain=4)
    with obs.enabled() as rec:
        simulate_assignment(
            res.assignment, prep.updates, deps=res.dependencies, name="LAP30"
        )
    assert len(rec.sim_runs) == 1
    run = rec.sim_runs[0]
    assert run.clock == "machine"
    assert run.n_units == len(res.assignment.partition.units)
    assert rec.counters["sim.messages"] == len(run.messages)
    assert rec.counters["sim.message_bytes"] == run.total_message_bytes()


def test_simulate_assignment_wrap_columns():
    prep = prepared_matrix("LAP30")
    res = wrap_mapping(prep, 16)
    _, run = simulate_assignment(res.assignment, prep.updates, name="LAP30")
    assert run.scheme == "wrap"
    assert run.n_units == prep.pattern.n
    assert set(run.kind) == {"column"}
    # Stages are contiguous column strips, at most 32 of them.
    assert len(np.unique(run.stage)) <= 32


def test_to_manifest_roundtrips_json():
    import json

    _, _, _, run = _sim("LAP30", "block", 16)
    doc = run.to_manifest()
    text = json.dumps(doc)
    back = json.loads(text)
    assert back["message_bytes"] == run.total_message_bytes()
    assert back["critical_path"]["length"] == run.makespan
    assert len(back["comm_matrix"]) == run.nprocs


def test_message_ledger_lamport_clock():
    led = MessageLedger(3)
    a = led.on_send(0, 1, 100, cause=7)
    b = led.on_send(1, 2, 50, cause=8)
    led.on_recv(a)
    led.on_recv(b)
    msgs = led.messages
    assert [m.nbytes for m in msgs] == [100, 50]
    # Delivery happens strictly after the send on the lamport clock.
    assert all(m.recv > m.send for m in msgs)
    assert led.undelivered() == 0
    c = led.on_send(2, 0, 9)
    assert led.undelivered() == 1
    run = led.to_sim_run(name="test")
    assert run.clock == "lamport"
    assert run.total_message_bytes() == 159
    # Ledger-only runs refuse the unit-level analyses.
    with pytest.raises(ValueError, match="message ledger"):
        run.critical_path()
    del c


def test_mpsim_run_parallel_ledger():
    from repro.mpsim import run_parallel

    def ring(comm, n):
        nxt = (comm.rank + 1) % comm.size
        prv = (comm.rank - 1) % comm.size
        comm.send(list(range(n)), nxt, tag=5)
        return len(comm.recv(prv, 5))

    with obs.enabled() as rec:
        out = run_parallel(ring, 4, 8)
    assert out == [8, 8, 8, 8]
    assert len(rec.sim_runs) == 1
    run = rec.sim_runs[0]
    assert run.clock == "lamport"
    assert run.name == "ring"
    assert len(run.messages) == 4
    assert all(m.recv is not None for m in run.messages)
    # Each rank talks only to its successor.
    mat = run.comm_matrix()
    assert np.count_nonzero(mat) == 4


def test_mpsim_dropped_message_stays_undelivered():
    from repro.mpsim import MPSimError, run_parallel

    def one_shot(comm):
        if comm.rank == 0:
            comm.send("x", 1, tag=3)
        return None

    with obs.enabled() as rec:
        run_parallel(one_shot, 2, drop_filter=lambda s, d, t: True, timeout=2.0)
    (run,) = rec.sim_runs
    assert len(run.messages) == 1
    assert run.messages[0].recv is None
    del MPSimError


def test_explain_run_end_to_end():
    from repro.analysis.explain import explain_manifest, explain_run, render_explain

    result = explain_run("LAP30", scheme="wrap", nprocs=16)
    doc = explain_manifest(result)
    assert doc["message_bytes"] == doc["traffic_total"]
    assert doc["critical_path"]["length"] == doc["makespan"]
    text = render_explain(result)
    assert "critical path" in text
    assert "LAP30" in text


def test_critical_path_message_edges_are_cross_processor():
    _, res, _, run = _sim("LAP30", "block", 16)
    cp = run.critical_path()
    for i, edge in enumerate(cp.edges):
        a, b = cp.units[i], cp.units[i + 1]
        if edge == "message":
            assert run.proc[a] != run.proc[b]
        elif edge == "local-dep":
            assert run.proc[a] == run.proc[b]
    assert REASON_MSG in run.reason_kind  # cross-processor waits exist


def test_ledger_run_empty_units():
    run = ledger_run("x", "mpsim", 2, 5.0, [])
    assert isinstance(run, SimRun)
    assert run.n_units == 0
    assert run.total_message_bytes() == 0
    assert run.comm_matrix().shape == (2, 2)
