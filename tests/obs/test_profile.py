"""obs.profile: span-attributed stack sampling and its output views."""

import threading
import time

import pytest

from repro import obs
from repro.obs.profile import MAX_DEPTH, NO_SPAN, SamplingProfiler, profiled
from repro.obs.trace import Recorder


def _spin(seconds: float) -> None:
    """Busy work the sampler can catch red-handed."""
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x += 1


class TestLifecycle:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="sampling rate"):
            SamplingProfiler(hz=0)

    def test_double_start_rejected(self):
        prof = SamplingProfiler(hz=50)
        prof.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                prof.start()
        finally:
            prof.stop()

    def test_context_manager_collects_samples(self):
        with profiled(hz=400) as prof:
            _spin(0.08)
        assert prof.nsamples > 0
        assert prof.duration >= 0.08

    def test_stop_without_samples_is_safe(self):
        prof = SamplingProfiler(hz=400)
        prof.start()
        prof.stop()
        assert "(no samples" in prof.table() or prof.nsamples > 0

    def test_adopts_active_recorder(self):
        rec = Recorder()
        with obs.enabled(rec):
            prof = SamplingProfiler(hz=100)
            prof.start()
            prof.stop()
        assert prof.recorder is rec


class TestSpanAttribution:
    def test_samples_tagged_with_open_span(self):
        rec = Recorder()
        with obs.enabled(rec):
            with profiled(hz=400, recorder=rec) as prof:
                with obs.span("pipeline.dependencies"):
                    _spin(0.08)
        spans = {span for (span, _stack) in prof.samples}
        assert "pipeline.dependencies" in spans

    def test_unspanned_work_tagged_no_span(self):
        with profiled(hz=400) as prof:
            _spin(0.08)
        spans = {span for (span, _stack) in prof.samples}
        assert spans == {NO_SPAN}

    def test_observer_threads_never_sampled(self):
        # A thread named like the memory monitor must be invisible.
        stop = threading.Event()
        decoy = threading.Thread(
            target=lambda: stop.wait(2.0), name="repro-obs-memory", daemon=True
        )
        decoy.start()
        with profiled(hz=400) as prof:
            _spin(0.05)
        stop.set()
        decoy.join()
        for (_span, stack) in prof.samples:
            assert not any("repro-obs" in f for f in stack)


class TestViews:
    @pytest.fixture(scope="class")
    def prof(self):
        rec = Recorder()
        with obs.enabled(rec):
            with profiled(hz=400, recorder=rec) as prof:
                with obs.span("hot.stage"):
                    _spin(0.1)
        assert prof.nsamples > 0
        return prof

    def test_collapsed_has_span_roots_and_counts(self, prof):
        text = prof.collapsed()
        assert text.endswith("\n")
        for line in text.splitlines():
            frames, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert frames.startswith("span:")
        assert any(line.startswith("span:hot.stage;")
                   for line in text.splitlines())

    def test_collapsed_without_span_root(self, prof):
        text = prof.collapsed(with_span_root=False)
        assert text and not any(
            line.startswith("span:") for line in text.splitlines()
        )

    def test_stacks_are_root_first(self, prof):
        # The sampler runs inside this pytest process, so every stack's
        # root frame is the interpreter/pytest entry, not _spin.
        for (_span, stack) in prof.samples:
            assert len(stack) <= MAX_DEPTH + 1
            assert "_spin" not in stack[0]

    def test_self_time_rows(self, prof):
        rows = prof.self_time()
        assert rows[0]["samples"] >= rows[-1]["samples"]  # heaviest first
        assert sum(r["samples"] for r in rows) == prof.nsamples
        assert abs(sum(r["pct"] for r in rows) - 100.0) < 1e-6
        # The busy loop dominates self time.
        assert "_spin" in rows[0]["func"]
        assert rows[0]["span"] == "hot.stage"

    def test_table_and_to_dict(self, prof):
        text = prof.table(top=5)
        assert "samples" in text and "_spin" in text
        doc = prof.to_dict(top=3)
        assert doc["hz"] == 400.0
        assert doc["nsamples"] == prof.nsamples
        assert len(doc["top"]) <= 3
        assert all(isinstance(r["pct"], float) for r in doc["top"])
