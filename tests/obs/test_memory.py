"""obs.memory: RSS sampling, span watermarks, and the enable switches."""

import time

import pytest

from repro import obs
from repro.obs.memory import (
    MemoryMonitor,
    deep_tracing_requested,
    memory_enabled,
    monitored,
    rss_bytes,
)
from repro.obs.trace import Recorder

pytestmark = pytest.mark.skipif(
    rss_bytes() is None, reason="RSS unreadable on this platform"
)


class TestSwitches:
    def test_enabled_by_default_where_rss_readable(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_MEM", raising=False)
        assert memory_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "OFF"])
    def test_env_opt_out(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE_MEM", value)
        assert not memory_enabled()

    def test_deep_mode_requested_only_by_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_MEM", raising=False)
        assert not deep_tracing_requested()
        monkeypatch.setenv("REPRO_TRACE_MEM", "deep")
        assert deep_tracing_requested()
        assert memory_enabled()  # deep is still enabled


class TestMonitor:
    def test_samples_land_on_recorder_timeline(self):
        rec = Recorder()
        monitor = MemoryMonitor(rec, interval=0.002)
        monitor.start()
        time.sleep(0.03)
        monitor.stop()
        assert len(rec.memory_samples) >= 2
        for t, rss in rec.memory_samples:
            assert t >= 0.0 and rss > 0
        assert rec.gauges["mem.rss_peak_mb"] > 0

    def test_stop_detaches_and_is_idempotent(self):
        rec = Recorder()
        monitor = MemoryMonitor(rec, interval=0.002).start()
        assert rec.memory is monitor
        monitor.stop()
        assert rec.memory is None
        monitor.stop()  # second stop must not raise

    def test_span_watermarks(self):
        rec = Recorder()
        with obs.enabled(rec), monitored(rec, interval=0.002):
            with obs.span("pipeline.symbolic"):
                blob = bytearray(8 * 1024 * 1024)  # force RSS movement
                time.sleep(0.01)
                del blob
        (span,) = rec.spans_named("pipeline.symbolic")
        assert span.args["mem_peak_mb"] > 0
        assert "mem_delta_mb" in span.args
        # Peak covers the whole window, so it can't be below the entry RSS.
        assert span.args["mem_peak_mb"] * 1024 * 1024 >= rec.memory_samples[0][1] * 0.5

    def test_short_span_still_gets_watermark(self):
        # Shorter than the sampling interval: entry/exit readings suffice.
        rec = Recorder()
        with obs.enabled(rec), monitored(rec, interval=60.0):
            with obs.span("blink"):
                pass
        (span,) = rec.spans_named("blink")
        assert span.args["mem_peak_mb"] > 0

    def test_deep_mode_attaches_alloc_delta(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MEM", "deep")
        rec = Recorder()
        with obs.enabled(rec), monitored(rec, interval=0.01):
            with obs.span("alloc"):
                keep = [0] * 200_000
        (span,) = rec.spans_named("alloc")
        assert "mem_alloc_kb" in span.args
        assert span.args["mem_alloc_kb"] > 0
        del keep

    def test_monitored_yields_none_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MEM", "off")
        rec = Recorder()
        with monitored(rec) as monitor:
            assert monitor is None
        assert rec.memory_samples == []

    def test_mark_since_window_peak(self):
        rec = Recorder()
        monitor = MemoryMonitor(rec, interval=60.0)
        monitor.start()
        mark = monitor.mark()
        # Inject a synthetic high-water sample inside the span window.
        spike = (rss_bytes() or 0) * 3
        rec.memory_samples.append((0.0, spike))
        args = monitor.since(mark)
        monitor.stop()
        assert args["mem_peak_mb"] == pytest.approx(spike / (1024 * 1024), rel=1e-3)
