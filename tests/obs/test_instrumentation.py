"""Instrumented call sites: pipeline spans/counters, simulator timeline
consistency, message counters, and the cached-stage regression pin."""

import numpy as np
import pytest

from repro.core import block_mapping, prepare, wrap_mapping
from repro.machine.simulate import simulate_schedule
from repro.obs import trace
from repro.sparse import grid9


@pytest.fixture(autouse=True)
def _clean_state():
    trace.disable()
    yield
    trace.disable()


@pytest.fixture(scope="module")
def lap10():
    return prepare(grid9(10, 10), name="LAP10")


PIPELINE_SPANS = {
    "pipeline.prepare",
    "pipeline.order",
    "pipeline.symbolic",
    "pipeline.enumerate_updates",
    "pipeline.partition",
    "pipeline.dependencies",
    "pipeline.schedule",
    "pipeline.metrics",
    "pipeline.block_mapping",
}


class TestPipelineInstrumentation:
    def test_block_mapping_emits_all_stage_spans(self):
        with trace.enabled() as rec:
            prep = prepare(grid9(8, 8), name="LAP8")
            block_mapping(prep, 4, grain=9)
        assert PIPELINE_SPANS <= {s.name for s in rec.spans}

    def test_partition_scheduler_dependency_counters(self):
        with trace.enabled() as rec:
            prep = prepare(grid9(8, 8), name="LAP8")
            r = block_mapping(prep, 4, grain=9)
        c = rec.counters
        assert c["partition.units"] == r.partition.num_units
        assert c["partition.clusters"] == len(r.partition.clusters)
        assert c["deps.edges"] == r.dependencies.num_edges()
        for cat, count in r.dependencies.category_counts.items():
            assert c[f"deps.category.{cat:02d}"] == count
        assert c["scheduler.units_assigned"] == r.partition.num_units
        # Every triangle-parented unit (diagonal unit triangles plus the
        # triangle's own unit rectangles) either hit P_a or fell back to
        # the round-robin marker.
        from repro.core.blocks import BlockKind

        tri_total = (
            c.get("scheduler.triangle.pa_hit", 0)
            + c.get("scheduler.triangle.round_robin_fallback", 0)
        )
        assert tri_total == sum(
            1 for u in r.partition.units if u.parent_kind is BlockKind.TRIANGLE
        )

    def test_proc_work_gauge_matches_assignment(self):
        with trace.enabled() as rec:
            prep = prepare(grid9(8, 8), name="LAP8")
            r = block_mapping(prep, 4, grain=9)
        gauge = np.asarray(rec.gauges["scheduler.proc_work"])
        assert len(gauge) == r.nprocs
        assert gauge.sum() > 0

    def test_wrap_mapping_traced(self, lap10):
        with trace.enabled() as rec:
            wrap_mapping(lap10, 4)
        assert "pipeline.wrap_mapping" in {s.name for s in rec.spans}

    def test_pipeline_untraced_by_default(self):
        rec = trace.Recorder()
        trace.set_recorder(rec)
        prep = prepare(grid9(8, 8), name="LAP8")
        block_mapping(prep, 4, grain=9)
        assert rec.is_empty()


class TestCachedStagesComputedOnce:
    def test_grain_sweep_reuses_prepared_stages(self):
        """Regression pin: PreparedMatrix caches ordering, symbolic
        factorization and update enumeration across a grain sweep —
        each runs exactly once while partition/schedule run per grain."""
        grains = (4, 9, 16, 25)
        with trace.enabled() as rec:
            prep = prepare(grid9(10, 10), name="LAP10")
            for g in grains:
                block_mapping(prep, 8, grain=g)
        c = rec.counters
        assert c["pipeline.stage.order"] == 1
        assert c["pipeline.stage.symbolic"] == 1
        assert c["pipeline.stage.enumerate_updates"] == 1
        assert c["pipeline.stage.partition"] == len(grains)
        assert c["pipeline.stage.dependencies"] == len(grains)
        assert c["pipeline.stage.schedule"] == len(grains)
        assert c["pipeline.stage.metrics"] == len(grains)


class TestSimulatorTimeline:
    def test_events_consistent_with_idle_fraction(self, lap10):
        r = block_mapping(lap10, 8, grain=9)
        with trace.enabled() as rec:
            tl = simulate_schedule(r.assignment, r.dependencies, r.prepared.updates)
        events = rec.timeline
        assert len(events) == r.partition.num_units
        # Per-lane busy time re-derived from the events must equal the
        # simulator's own proc_busy, and hence its idle_fraction.
        busy = np.zeros(r.nprocs)
        for e in events:
            busy[e.lane] += e.dur
        np.testing.assert_allclose(busy, tl.proc_busy)
        makespan = max(e.ts + e.dur for e in events)
        assert makespan == tl.makespan
        idle = 1.0 - busy.sum() / (r.nprocs * makespan)
        assert idle == pytest.approx(tl.idle_fraction)
        assert rec.gauges["sim.idle_fraction"] == pytest.approx(tl.idle_fraction)
        assert rec.gauges["sim.makespan"] == tl.makespan

    def test_events_match_start_finish_and_lanes(self, lap10):
        r = block_mapping(lap10, 8, grain=9)
        with trace.enabled() as rec:
            tl = simulate_schedule(r.assignment, r.dependencies, r.prepared.updates)
        for e in rec.timeline:
            uid = e.args["uid"]
            assert e.ts == tl.start[uid]
            assert e.ts + e.dur == pytest.approx(tl.finish[uid])
            assert e.lane == int(r.assignment.proc_of_unit[uid])


class TestCommCounters:
    def test_messages_counted_when_enabled(self):
        from repro.mpsim.comm import CommWorld

        with trace.enabled() as rec:
            world = CommWorld(2)
            c0, c1 = world.comm(0), world.comm(1)
            c0.send({"x": 1}, dest=1, tag=3)
            assert c1.recv(source=0, tag=3) == {"x": 1}
        assert rec.counters["mpsim.messages_sent"] == 1
        assert rec.counters["mpsim.messages_received"] == 1
        assert rec.counters["mpsim.bytes_sent"] == world.stats[0].bytes_sent
