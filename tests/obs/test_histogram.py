"""obs.histogram: fixed log-bucket distributions and recorder wiring."""

import json
import math

import pytest

from repro import obs
from repro.obs.histogram import BASE, Histogram, bucket_bounds, bucket_index
from repro.obs.trace import Recorder


class TestBuckets:
    def test_value_lands_inside_its_bucket(self):
        for value in (0.001, 0.5, 1.0, 3.7, 1000.0, 1e9):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value < hi or value == pytest.approx(lo)

    def test_bucket_width_under_twenty_percent(self):
        lo, hi = bucket_bounds(bucket_index(42.0))
        assert hi / lo == pytest.approx(BASE)
        assert (hi - lo) / lo < 0.20

    def test_bounds_are_fixed_never_data_dependent(self):
        # Two histograms fed different data must share bucket boundaries.
        assert bucket_index(7.0) == bucket_index(7.0)
        a, b = Histogram(), Histogram()
        a.observe(7.0)
        b.observe(7.0)
        assert a.buckets == b.buckets

    def test_nonpositive_goes_to_underflow(self):
        idx = bucket_index(0.0)
        assert idx == bucket_index(-5.0)
        assert bucket_bounds(idx) == (0.0, 0.0)


class TestHistogram:
    def test_exact_scalars(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(16.0)
        assert h.mean == pytest.approx(4.0)
        assert h.min == 1.0 and h.max == 10.0

    def test_percentiles_within_one_bucket(self):
        h = Histogram()
        for i in range(1, 101):
            h.observe(float(i))
        # Estimates are geometric bucket midpoints clamped to [min, max];
        # one bucket is <20% wide so the estimate is within that.
        assert h.percentile(50) == pytest.approx(50.0, rel=0.20)
        assert h.percentile(90) == pytest.approx(90.0, rel=0.20)
        assert h.percentile(99) == pytest.approx(99.0, rel=0.20)
        assert h.percentile(0) == 1.0 and h.percentile(100) == 100.0

    def test_p99_separates_from_p50_under_skew(self):
        h = Histogram()
        for _ in range(99):
            h.observe(1.0)
        h.observe(1000.0)  # the straggler a mean would hide
        assert h.percentile(50) == pytest.approx(1.0, rel=0.20)
        assert h.percentile(99.5) > 100.0
        assert h.mean == pytest.approx(10.99, rel=0.01)

    def test_empty_histogram_is_safe(self):
        h = Histogram()
        assert h.mean == 0.0 and h.percentile(50) == 0.0
        assert h.summary()["count"] == 0

    def test_merge_equals_single_stream(self):
        a, b, both = Histogram(), Histogram(), Histogram()
        for i, v in enumerate((0.1, 2.0, 5.0, 40.0, 0.5, 7.0)):
            (a if i % 2 else b).observe(v)
            both.observe(v)
        a.merge(b)
        assert a == both

    def test_dict_roundtrip_is_json_safe(self):
        h = Histogram()
        for v in (0.5, 3.0, -1.0):
            h.observe(v)
        doc = json.loads(json.dumps(h.to_dict()))
        clone = Histogram.from_dict(doc)
        assert clone == h
        assert clone.percentile(50) == h.percentile(50)

    def test_from_dict_empty(self):
        h = Histogram.from_dict({})
        assert h.count == 0 and h.min == math.inf


class TestRecorderObserve:
    def test_observe_records_named_histogram(self):
        rec = Recorder()
        with obs.enabled(rec):
            obs.observe("perf.sweep.unit_ms", 4.0)
            obs.observe("perf.sweep.unit_ms", 8.0)
        hist = rec.histograms["perf.sweep.unit_ms"]
        assert hist.count == 2 and hist.max == 8.0

    def test_observe_noop_when_disabled(self):
        obs.observe("ghost", 1.0)  # must not raise, must not record
        rec = Recorder()
        with obs.enabled(rec):
            pass
        assert rec.histograms == {}

    def test_summary_table_shows_percentiles(self):
        rec = Recorder()
        with obs.enabled(rec):
            for v in (1.0, 2.0, 50.0):
                obs.observe("perf.sweep.unit_ms", v)
        text = obs.summary_table(rec)
        assert "perf.sweep.unit_ms" in text
        assert "p99" in text or "p50" in text
