"""obs.shard: worker-shard snapshot/pack/merge and cross-process traces."""

import importlib
import json
import os

import pytest

from repro import obs
from repro.obs import shard as shard_mod
from repro.obs.export import to_chrome_trace
from repro.obs.shard import (
    SHARD_FORMAT_VERSION,
    RecorderShard,
    merge_into,
    pack,
    snapshot,
    unpack,
)
from repro.obs.trace import Recorder
from repro.perf import sweep

sweep_mod = importlib.import_module("repro.perf.sweep")


def _filled_recorder() -> Recorder:
    rec = Recorder()
    with obs.enabled(rec):
        with obs.span("pipeline.order", matrix="LAP30"):
            with obs.span("pipeline.symbolic"):
                pass
        obs.counter("partition.units", 7)
        obs.gauge("scheduler.proc_work", [1.0, 2.0])
        obs.timeline_event("unit 0", ts=0.0, dur=4.0, lane=0)
    return rec


class TestSnapshot:
    def test_captures_everything(self):
        rec = _filled_recorder()
        sh = snapshot(rec)
        assert sh.pid == os.getpid()
        assert sh.epoch_unix == rec.epoch_unix
        assert sh.spans == rec.spans
        assert sh.counters == rec.counters
        assert sh.gauges == rec.gauges
        assert sh.timeline == rec.timeline
        assert sh.format_version == SHARD_FORMAT_VERSION
        assert not sh.is_empty()

    def test_empty(self):
        assert snapshot(Recorder()).is_empty()


class TestPackUnpack:
    def test_inline_roundtrip(self):
        sh = snapshot(_filled_recorder())
        kind, blob = pack(sh)
        assert kind == "inline" and isinstance(blob, bytes)
        assert unpack((kind, blob)) == sh

    def test_spills_to_file_above_threshold(self, tmp_path):
        sh = snapshot(_filled_recorder())
        kind, path = pack(sh, spill_dir=tmp_path, threshold=0)
        assert kind == "file"
        assert os.path.dirname(path) == str(tmp_path)
        assert unpack((kind, path)) == sh
        assert not os.path.exists(path)  # consumed on read

    def test_never_spills_without_a_dir(self):
        kind, _ = pack(snapshot(_filled_recorder()), spill_dir=None, threshold=0)
        assert kind == "inline"

    def test_small_shard_stays_inline_even_with_dir(self, tmp_path):
        kind, _ = pack(snapshot(Recorder()), spill_dir=tmp_path)
        assert kind == "inline"
        assert not list(tmp_path.iterdir())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown shard payload kind"):
            unpack(("smoke-signal", b""))

    def test_non_shard_payload_rejected(self):
        import pickle

        with pytest.raises(ValueError, match="not a RecorderShard"):
            unpack(("inline", pickle.dumps({"not": "a shard"})))

    def test_format_version_mismatch_rejected(self):
        import pickle

        sh = snapshot(Recorder())
        sh.format_version = SHARD_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="shard format"):
            unpack(("inline", pickle.dumps(sh)))


class TestMerge:
    def test_rebases_spans_onto_parent_epoch_and_tags_pid(self):
        parent = Recorder()
        child = Recorder()
        child.epoch_unix = parent.epoch_unix + 5.0  # child started 5s later
        child.add_span("pipeline.order", 1.0, 2.0, thread=42, args={"k": 1})
        sh = snapshot(child)
        merge_into(parent, sh)
        (s,) = parent.spans
        assert s.name == "pipeline.order"
        assert s.start == pytest.approx(6.0) and s.end == pytest.approx(7.0)
        assert s.pid == sh.pid and s.thread == 42 and s.args == {"k": 1}

    def test_counters_accumulate_and_gauges_overwrite(self):
        parent = Recorder()
        parent.add_counter("perf.cache.hit", 2)
        parent.set_gauge("g", "old")
        child = Recorder()
        child.add_counter("perf.cache.hit", 3)
        child.set_gauge("g", "new")
        merge_into(parent, snapshot(child))
        assert parent.counters["perf.cache.hit"] == 5
        assert parent.gauges["g"] == "new"

    def test_timeline_events_keep_their_simulated_clock(self):
        parent = Recorder()
        child = Recorder()
        child.epoch_unix = parent.epoch_unix + 100.0
        child.add_timeline_event("unit 0", 3.0, 2.0, 1, "perf.sweep", uid=0)
        merge_into(parent, snapshot(child))
        (e,) = parent.timeline
        assert (e.ts, e.dur, e.lane, e.track) == (3.0, 2.0, 1, "perf.sweep")

    def test_histograms_merge_by_bucket_addition(self):
        parent = Recorder()
        child = Recorder()
        with obs.enabled(parent):
            obs.observe("perf.sweep.unit_ms", 1.0)
        with obs.enabled(child):
            obs.observe("perf.sweep.unit_ms", 100.0)
            obs.observe("perf.sweep.queue_wait_ms", 5.0)
        merge_into(parent, snapshot(child))
        merged = parent.histograms["perf.sweep.unit_ms"]
        assert merged.count == 2
        assert merged.min == 1.0 and merged.max == 100.0
        assert parent.histograms["perf.sweep.queue_wait_ms"].count == 1

    def test_memory_samples_rebase_like_spans(self):
        parent = Recorder()
        child = Recorder()
        child.epoch_unix = parent.epoch_unix + 5.0
        child.memory_samples.append((1.0, 64 * 1024 * 1024))
        merge_into(parent, snapshot(child))
        ((t, rss),) = parent.memory_samples
        assert t == pytest.approx(6.0)
        assert rss == 64 * 1024 * 1024


class TestWorkerDiedMidSpan:
    """A worker that dies with spans still open must still merge
    cleanly: the drained spans arrive error-tagged and the combined
    timeline stays monotonic (every span start <= end, rebased into the
    parent's window)."""

    def _dying_worker_shard(self, parent: Recorder) -> RecorderShard:
        child = Recorder()
        child.epoch_unix = parent.epoch_unix + 2.0
        with obs.enabled(child):
            child.span("perf.sweep.task", label="DWT512/block/P4").__enter__()
            child.span("pipeline.schedule").__enter__()
            # The crash: nothing exits; the pool's cleanup drains.
            child.drain_open_spans(error="WorkerDied")
        return snapshot(child)

    def test_drained_spans_arrive_error_tagged(self):
        parent = Recorder()
        sh = self._dying_worker_shard(parent)
        merge_into(parent, sh)
        assert len(parent.spans) == 2
        for s in parent.spans:
            assert s.error == "WorkerDied"
            assert s.pid == sh.pid
        (task,) = parent.spans_named("perf.sweep.task")
        assert task.args["label"] == "DWT512/block/P4"

    def test_merged_timeline_is_monotonic(self):
        parent = Recorder()
        with obs.enabled(parent):
            with obs.span("parent.work"):
                pass
        merge_into(parent, self._dying_worker_shard(parent))
        horizon = max(s.end for s in parent.spans)
        for s in parent.spans:
            assert s.end >= s.start  # drained spans close at drain time
            assert -1.0 <= s.start <= horizon + 3.0

    def test_dead_worker_shard_exports_cleanly(self):
        parent = Recorder()
        merge_into(parent, self._dying_worker_shard(parent))
        doc = to_chrome_trace(parent)
        assert json.dumps(doc)
        errored = [e for e in doc["traceEvents"]
                   if e["ph"] == "X" and e["args"].get("error")]
        assert len(errored) == 2


class TestDrainOpenSpans:
    def test_records_open_spans_and_neutralizes_late_exit(self):
        rec = Recorder()
        outer = rec.span("outer", k=1).__enter__()
        inner = rec.span("inner").__enter__()
        assert rec.active_depth == 2
        assert rec.drain_open_spans(error="Boom") == 2
        assert rec.active_depth == 0
        assert {s.name for s in rec.spans} == {"outer", "inner"}
        assert all(s.error == "Boom" for s in rec.spans)
        # A late __exit__ (e.g. the with-block unwinding after the drain)
        # must not double-record or underflow the stack.
        inner.__exit__(None, None, None)
        outer.__exit__(None, None, None)
        assert len(rec.spans) == 2
        assert rec.active_depth == 0

    def test_noop_when_nothing_open(self):
        rec = Recorder()
        assert rec.drain_open_spans() == 0
        assert rec.spans == []


GRID = dict(schemes=("block", "block-adaptive", "wrap"),
            procs=(2, 4), grains=(4,), min_widths=(4,))

#: Matrix-preparation spans are *placement*-dependent, not work-dependent:
#: the serial sweep memoizes one prepared matrix in-process while every
#: pool worker re-loads it from the disk cache, so their count varies
#: with scheduling.  The parity invariant covers the measured stages.
_PREP_SPANS = {
    "pipeline.read_index", "pipeline.prepare", "pipeline.order",
    "pipeline.symbolic", "pipeline.enumerate_updates",
}


def _is_work_span(s) -> bool:
    if s.name in ("perf.sweep.group", "perf.sweep.task"):
        return True
    return s.name.startswith("pipeline.") and s.name not in _PREP_SPANS


def _work_span_keys(rec: Recorder) -> list[tuple]:
    # Memory watermarks (mem_peak_mb, ...) are measurement artifacts
    # like timestamps: present only where a monitor was attached and
    # never identical across placements, so parity excludes them.
    return sorted(
        (
            s.name,
            json.dumps(
                {k: v for k, v in s.args.items() if not k.startswith("mem_")},
                sort_keys=True, default=str,
            ),
        )
        for s in rec.spans
        if _is_work_span(s)
    )


class TestSweepTraceMerge:
    """Acceptance: a jobs=4 sweep trace carries every worker's spans on
    its own lane, and the merged per-task span set equals the jobs=1
    run's (same names/args; only timestamps differ)."""

    @pytest.fixture(scope="class")
    def warm_cache(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("sweep-cache")
        sweep(["DWT512"], jobs=1, cache_dir=cache, **GRID)  # cold fill
        return cache

    @pytest.fixture(scope="class")
    def serial_rec(self, warm_cache):
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=1, cache_dir=warm_cache, **GRID)
        return rec

    @pytest.fixture(scope="class")
    def parallel_rec(self, warm_cache):
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=4, cache_dir=warm_cache, **GRID)
        return rec

    def test_merged_span_set_matches_serial(self, serial_rec, parallel_rec):
        assert _work_span_keys(parallel_rec) == _work_span_keys(serial_rec)

    def test_worker_spans_arrive_with_pids(self, parallel_rec):
        worker_pids = {s.pid for s in parallel_rec.spans if s.pid is not None}
        assert worker_pids  # at least one worker shipped its shard home
        assert os.getpid() not in worker_pids
        # Every span of measured work ran in a worker, none in the parent.
        for s in parallel_rec.spans:
            if _is_work_span(s):
                assert s.pid is not None

    def test_every_working_pid_gets_a_utilization_span(self, parallel_rec):
        worker_pids = {
            s.pid
            for s in parallel_rec.spans
            if s.pid is not None and _is_work_span(s)
        }
        util_pids = {
            s.pid for s in parallel_rec.spans if s.name == "pool.utilization"
        }
        assert util_pids == worker_pids
        for s in parallel_rec.spans:
            if s.name == "pool.utilization":
                assert 0.0 <= s.args["utilization"] <= 1.0

    def test_queue_wait_spans_cover_every_unit(self, parallel_rec):
        waits = parallel_rec.spans_named("pool.queue_wait")
        groups = {s.args["unit"] for s in waits}
        expected = {
            s.args["label"] for s in parallel_rec.spans_named("perf.sweep.group")
        }
        assert groups == expected
        for s in waits:
            assert s.pid is not None and s.end >= s.start

    def test_chrome_export_puts_workers_on_distinct_lanes(self, parallel_rec):
        doc = to_chrome_trace(parallel_rec)
        worker_pids = {s.pid for s in parallel_rec.spans if s.pid is not None}
        process_names = {
            e["args"]["name"]: e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        lanes = {
            pid for name, pid in process_names.items()
            if name.startswith("sweep worker")
        }
        assert len(lanes) == len(worker_pids)
        assert json.dumps(doc)  # the whole merged trace serializes

    def test_timestamps_rebased_into_parent_range(self, parallel_rec):
        # Worker spans must land inside the parent's recording window —
        # a missed rebase would put them ~epoch-distance away.
        horizon = max(s.end for s in parallel_rec.spans)
        for s in parallel_rec.spans:
            if s.pid is not None:
                assert -1.0 <= s.start <= horizon + 1.0


class TestWorkerFailureTrace:
    def test_failed_then_retried_task_leaves_no_dangling_span(self, monkeypatch):
        parent_pid = os.getpid()
        real = sweep_mod._measure_group

        def worker_only_boom(group, cache_dir, memo, part_memo):
            if os.getpid() != parent_pid:  # forked workers inherit this
                raise ValueError("worker-only crash")
            return real(group, cache_dir, memo, part_memo)

        monkeypatch.setattr(sweep_mod, "_measure_group", worker_only_boom)
        with obs.enabled(obs.Recorder()) as rec:
            records = sweep(["DWT512"], jobs=2, **GRID)
        assert records == sweep(["DWT512"], jobs=1, **GRID)
        assert rec.active_depth == 0  # no span left open by the failures
        assert rec.counters.get("perf.sweep.retries", 0) >= 1
        # The failed group spans came home in the shard, marked errored.
        errored = [s for s in rec.spans if s.error == "ValueError"]
        assert errored
        assert all(s.pid is not None for s in errored)

    def test_worker_error_carries_label_traceback_and_stats(self, monkeypatch):
        from repro.perf import build_grid, group_grid

        def boom(group, cache_dir, memo, part_memo):
            raise ValueError("stage exploded")

        monkeypatch.setattr(sweep_mod, "_measure_group", boom)
        # Exercise the worker entry point directly — the same code path
        # the pool runs — so the SweepWorkerError is observable before
        # the parent's retry machinery converts a terminal failure.
        (group, *_rest) = group_grid(build_grid(["DWT512"], **GRID))
        with pytest.raises(sweep_mod.SweepWorkerError) as excinfo:
            sweep_mod._run_group((0, group, None, False, None))
        err = excinfo.value
        assert group.label() in str(err)
        assert "stage exploded" in err.worker_traceback
        assert isinstance(err.stats, dict) and err.stats["pid"] == os.getpid()

    def test_terminal_failure_names_the_unit(self, monkeypatch):
        def boom(group, cache_dir, memo, part_memo):
            raise ValueError("stage exploded")

        monkeypatch.setattr(sweep_mod, "_measure_group", boom)
        with pytest.raises(RuntimeError, match="failed after retry"):
            sweep(["DWT512"], jobs=2, **GRID)

    def test_worker_error_survives_a_pickle_roundtrip(self):
        import pickle

        err = sweep_mod.SweepWorkerError("L", "tb", {"pid": 1})
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.label, clone.worker_traceback, clone.stats) == ("L", "tb", {"pid": 1})
        assert "tb" in str(clone)
