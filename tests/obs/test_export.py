"""Exporters: JSONL, Chrome-trace JSON, ASCII summary."""

import json

import pytest

from repro.obs import (
    Recorder,
    chrome_trace_json,
    summary_table,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs import trace


@pytest.fixture
def recorded():
    with trace.enabled() as rec:
        with trace.span("pipeline.prepare", matrix="LAP30"):
            with trace.span("pipeline.order"):
                pass
        trace.counter("partition.units", 7)
        trace.gauge("scheduler.proc_work", [1.0, 2.0])
        trace.timeline_event("unit 0 (column)", ts=0.0, dur=4.0, lane=0, uid=0)
        trace.timeline_event("unit 1 (triangle)", ts=4.0, dur=2.0, lane=1, uid=1)
    return rec


class TestChromeTrace:
    def test_round_trips_through_json_loads(self, recorded):
        doc = json.loads(chrome_trace_json(recorded))
        assert doc == to_chrome_trace(recorded)
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_spans_become_complete_events(self, recorded):
        doc = to_chrome_trace(recorded)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X" and e["pid"] == 1]
        names = {e["name"] for e in xs}
        assert names == {"pipeline.prepare", "pipeline.order"}
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_timeline_events_land_on_processor_lanes(self, recorded):
        doc = to_chrome_trace(recorded)
        sims = [e for e in doc["traceEvents"] if e["ph"] == "X" and e["pid"] == 2]
        assert {(e["tid"], e["ts"], e["dur"]) for e in sims} == {(0, 0.0, 4.0), (1, 4.0, 2.0)}
        lane_names = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["pid"] == 2 and e["name"] == "thread_name"
        ]
        assert {e["args"]["name"] for e in lane_names} == {"proc 0", "proc 1"}

    def test_counters_and_gauges_in_other_data(self, recorded):
        doc = to_chrome_trace(recorded)
        assert doc["otherData"]["counters"] == {"partition.units": 7}
        assert doc["otherData"]["gauges"] == {"scheduler.proc_work": [1.0, 2.0]}

    def test_numpy_args_are_jsonable(self):
        import numpy as np

        with trace.enabled() as rec:
            with trace.span("s", count=np.int64(3), arr=np.arange(2)):
                pass
        doc = json.loads(chrome_trace_json(rec))
        (e,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert e["args"] == {"count": 3, "arr": [0, 1]}

    def test_error_spans_carry_the_exception(self):
        with trace.enabled() as rec:
            with pytest.raises(ValueError):
                with trace.span("bad"):
                    raise ValueError("nope")
        doc = to_chrome_trace(rec)
        (e,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert e["args"]["error"] == "ValueError"

    def test_write_to_path(self, recorded, tmp_path):
        out = tmp_path / "run.json"
        write_chrome_trace(recorded, out)
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]


class TestJsonl:
    def test_every_line_is_json(self, recorded):
        lines = to_jsonl(recorded).splitlines()
        records = [json.loads(line) for line in lines]
        types = {r["type"] for r in records}
        assert types == {"span", "timeline", "counter", "gauge"}
        assert len(records) == 2 + 2 + 1 + 1

    def test_write_to_path(self, recorded, tmp_path):
        out = tmp_path / "run.jsonl"
        write_jsonl(recorded, out)
        assert len(out.read_text().splitlines()) == 6

    def test_empty_recorder(self):
        assert to_jsonl(Recorder()) == ""


class TestSummaryTable:
    def test_sections_present(self, recorded):
        text = summary_table(recorded)
        assert "Stage timings" in text
        assert "pipeline.prepare" in text
        assert "Counters" in text and "partition.units" in text
        assert "Gauges" in text and "scheduler.proc_work" in text
        assert "Simulated timeline" in text

    def test_empty_recorder(self):
        assert summary_table(Recorder()) == "(empty trace)"

    def test_busy_percentages(self, recorded):
        text = summary_table(recorded)
        # lane 0 busy 4 of 6 units = 66.7%, lane 1 busy 2 of 6 = 33.3%
        assert "66.7%" in text and "33.3%" in text
