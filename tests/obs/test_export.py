"""Exporters: JSONL, Chrome-trace JSON, ASCII summary."""

import json

import pytest

from repro.obs import (
    Recorder,
    chrome_trace_json,
    summary_table,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs import trace


@pytest.fixture
def recorded():
    with trace.enabled() as rec:
        with trace.span("pipeline.prepare", matrix="LAP30"):
            with trace.span("pipeline.order"):
                pass
        trace.counter("partition.units", 7)
        trace.gauge("scheduler.proc_work", [1.0, 2.0])
        trace.timeline_event("unit 0 (column)", ts=0.0, dur=4.0, lane=0, uid=0)
        trace.timeline_event("unit 1 (triangle)", ts=4.0, dur=2.0, lane=1, uid=1)
    return rec


class TestChromeTrace:
    def test_round_trips_through_json_loads(self, recorded):
        doc = json.loads(chrome_trace_json(recorded))
        assert doc == to_chrome_trace(recorded)
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_spans_become_complete_events(self, recorded):
        doc = to_chrome_trace(recorded)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X" and e["pid"] == 1]
        names = {e["name"] for e in xs}
        assert names == {"pipeline.prepare", "pipeline.order"}
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_timeline_events_land_on_processor_lanes(self, recorded):
        doc = to_chrome_trace(recorded)
        sims = [e for e in doc["traceEvents"] if e["ph"] == "X" and e["pid"] == 2]
        assert {(e["tid"], e["ts"], e["dur"]) for e in sims} == {(0, 0.0, 4.0), (1, 4.0, 2.0)}
        lane_names = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["pid"] == 2 and e["name"] == "thread_name"
        ]
        assert {e["args"]["name"] for e in lane_names} == {"proc 0", "proc 1"}

    def test_counters_and_gauges_in_other_data(self, recorded):
        doc = to_chrome_trace(recorded)
        assert doc["otherData"]["counters"] == {"partition.units": 7}
        assert doc["otherData"]["gauges"] == {"scheduler.proc_work": [1.0, 2.0]}

    def test_numpy_args_are_jsonable(self):
        import numpy as np

        with trace.enabled() as rec:
            with trace.span("s", count=np.int64(3), arr=np.arange(2)):
                pass
        doc = json.loads(chrome_trace_json(rec))
        (e,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert e["args"] == {"count": 3, "arr": [0, 1]}

    def test_error_spans_carry_the_exception(self):
        with trace.enabled() as rec:
            with pytest.raises(ValueError):
                with trace.span("bad"):
                    raise ValueError("nope")
        doc = to_chrome_trace(rec)
        (e,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert e["args"]["error"] == "ValueError"

    def test_write_to_path(self, recorded, tmp_path):
        out = tmp_path / "run.json"
        write_chrome_trace(recorded, out)
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]


class TestChromeTraceEdgeCases:
    def test_empty_recorder_still_valid(self):
        doc = json.loads(chrome_trace_json(Recorder()))
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        assert doc["otherData"]["counters"] == {}

    def test_counter_only_run(self):
        with trace.enabled() as rec:
            trace.counter("partition.units", 3)
            trace.counter("partition.units", 4)
        doc = to_chrome_trace(rec)
        assert doc["otherData"]["counters"] == {"partition.units": 7}
        assert not [e for e in doc["traceEvents"] if e["ph"] == "X"]

    def test_zero_duration_timeline_events(self):
        with trace.enabled() as rec:
            trace.timeline_event("idle", ts=0.0, dur=0.0, lane=0)
        doc = to_chrome_trace(rec)
        (e,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert e["dur"] == 0.0
        assert "busy %" in summary_table(rec)  # no ZeroDivisionError

    def test_non_ascii_span_args_round_trip(self):
        with trace.enabled() as rec:
            with trace.span("étape", matrice="Δ-行列", note="naïve"):
                pass
        doc = json.loads(chrome_trace_json(rec))
        (e,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert e["name"] == "étape"
        assert e["args"] == {"matrice": "Δ-行列", "note": "naïve"}

    def test_worker_spans_get_their_own_process_lanes(self):
        rec = Recorder()
        rec.add_span("parent.stage", 0.0, 1.0)
        rec.add_span("worker.stage", 0.2, 0.8, pid=111, thread=5)
        rec.add_span("worker.stage", 0.3, 0.9, pid=222, thread=7)
        doc = to_chrome_trace(rec)
        xs = {e["name"]: e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert xs["parent.stage"] == 1
        worker_lane_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
            and e["args"]["name"].startswith("sweep worker")
        }
        assert worker_lane_names == {
            "sweep worker (pid 111)", "sweep worker (pid 222)",
        }
        worker_pids = {
            e["pid"] for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "worker.stage"
        }
        assert len(worker_pids) == 2 and 1 not in worker_pids


class TestJsonl:
    def test_every_line_is_json(self, recorded):
        lines = to_jsonl(recorded).splitlines()
        records = [json.loads(line) for line in lines]
        types = {r["type"] for r in records}
        assert types == {"span", "timeline", "counter", "gauge"}
        assert len(records) == 2 + 2 + 1 + 1

    def test_write_to_path(self, recorded, tmp_path):
        out = tmp_path / "run.jsonl"
        write_jsonl(recorded, out)
        assert len(out.read_text().splitlines()) == 6

    def test_empty_recorder(self):
        assert to_jsonl(Recorder()) == ""

    def test_span_lines_carry_the_worker_pid(self):
        rec = Recorder()
        rec.add_span("worker.stage", 0.0, 1.0, pid=123)
        (line,) = to_jsonl(rec).splitlines()
        assert json.loads(line)["pid"] == 123

    def test_non_ascii_args_round_trip(self):
        rec = Recorder()
        rec.add_span("étape", 0.0, 1.0, args={"matrice": "Δ-行列"})
        (line,) = to_jsonl(rec).splitlines()
        assert json.loads(line)["args"] == {"matrice": "Δ-行列"}


class TestSummaryTable:
    def test_sections_present(self, recorded):
        text = summary_table(recorded)
        assert "Stage timings" in text
        assert "pipeline.prepare" in text
        assert "Counters" in text and "partition.units" in text
        assert "Gauges" in text and "scheduler.proc_work" in text
        assert "Simulated timeline" in text

    def test_empty_recorder(self):
        assert summary_table(Recorder()) == "(empty trace)"

    def test_busy_percentages(self, recorded):
        text = summary_table(recorded)
        # lane 0 busy 4 of 6 units = 66.7%, lane 1 busy 2 of 6 = 33.3%
        assert "66.7%" in text and "33.3%" in text


class TestSimRunExport:
    @pytest.fixture
    def recorded_sim(self):
        from repro.obs.simtime import SimMessage, ledger_run, record_sim_run

        msgs = [
            SimMessage(src=0, dst=1, nbytes=40, cause=3, send=1.0, recv=2.0),
            SimMessage(src=1, dst=0, nbytes=10, cause=4, send=2.0, recv=3.0),
            SimMessage(src=0, dst=1, nbytes=5, cause=5, send=3.0, recv=None),
        ]
        with trace.enabled() as rec:
            record_sim_run(ledger_run("demo", "wrap", 2, 3.0, msgs))
        return rec

    def test_jsonl_carries_sim_run_and_messages(self, recorded_sim):
        records = [json.loads(line) for line in
                   to_jsonl(recorded_sim).splitlines()]
        (run,) = [r for r in records if r["type"] == "sim_run"]
        assert run["name"] == "demo" and run["message_bytes"] == 55
        msgs = [r for r in records if r["type"] == "sim_message"]
        assert len(msgs) == 3
        assert {m["src"] for m in msgs} == {0, 1}
        undelivered = [m for m in msgs if m["recv"] is None]
        assert len(undelivered) == 1

    def test_chrome_trace_flow_events(self, recorded_sim):
        doc = to_chrome_trace(recorded_sim)
        starts = [e for e in doc["traceEvents"] if e.get("ph") == "s"]
        ends = [e for e in doc["traceEvents"] if e.get("ph") == "f"]
        # Only delivered messages become flow arrows.
        assert len(starts) == len(ends) == 2
        assert all(e["bp"] == "e" for e in ends)
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        assert doc["otherData"]["sim_runs"][0]["name"] == "demo"

    def test_summary_mentions_sim_clock(self, recorded_sim):
        text = summary_table(recorded_sim)
        assert "Simulated machine" in text
        assert "demo" in text
