"""Run the pipeline on your own matrix (Matrix Market or Harwell-Boeing).

Demonstrates the I/O layer end-to-end: writes a structure to both
formats, reads it back, and runs the block/wrap comparison on it.  Point
it at your own symmetric ``.mtx``/``.rsa`` file to analyze a real
problem.

Run:  python examples/custom_matrix.py [path/to/matrix.mtx]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import render_table
from repro.core import block_mapping, prepare, wrap_mapping
from repro.sparse import (
    SymmetricCSC,
    SymmetricGraph,
    read_harwell_boeing,
    read_matrix_market,
    stiffened_cylinder,
    write_harwell_boeing,
    write_matrix_market,
)


def load_any(path: Path) -> SymmetricGraph:
    """Read a symmetric structure from .mtx or Harwell-Boeing."""
    if path.suffix.lower() in (".mtx", ".mm"):
        obj = read_matrix_market(path)
    else:
        obj = read_harwell_boeing(path)
    return obj.graph() if isinstance(obj, SymmetricCSC) else obj


def main(path: str | None = None) -> None:
    if path is None:
        # No file given: write a demo structure in both formats first.
        demo = stiffened_cylinder(8, 24, diagonals=True)
        tmp = Path(tempfile.mkdtemp())
        mtx = tmp / "demo.mtx"
        hb = tmp / "demo.psa"
        write_matrix_market(demo, mtx)
        write_harwell_boeing(demo, hb, title="demo cylinder", key="DEMO")
        assert load_any(hb) == demo  # round-trip across both formats
        path = str(mtx)
        print(f"(no input given; wrote a demo structure to {mtx})")

    graph = load_any(Path(path))
    prep = prepare(graph, ordering="mmd", name=Path(path).stem)
    print(
        f"{prep.name}: n={graph.n}, nnz(A)={graph.nnz_lower}, "
        f"nnz(L)={prep.factor_nnz}"
    )
    rows = []
    for nprocs in (4, 16):
        for grain in (4, 25):
            r = block_mapping(prep, nprocs, grain=grain)
            rows.append(
                [f"block g={grain}", nprocs, r.traffic.total,
                 round(r.balance.imbalance, 2)]
            )
        w = wrap_mapping(prep, nprocs)
        rows.append(["wrap", nprocs, w.traffic.total,
                     round(w.balance.imbalance, 2)])
    print()
    print(render_table(["scheme", "P", "traffic", "lambda"], rows,
                       "Mapping comparison on your matrix"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
