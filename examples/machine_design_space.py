"""Which mapping wins on which machine?

The paper's conclusion: "for systems such as message passing
architectures, where communication overhead is much more expensive than
computation, automated, block-based methods ... may prove to be better
alternatives."  This example makes that quantitative with the
event-driven schedule simulator: it sweeps the machine's communication
cost (latency alpha, per-element cost beta) and reports the simulated
makespan of the block schedule at fine and coarse grains.

Run:  python examples/machine_design_space.py [MATRIX]
"""

import sys

from repro.analysis import render_gantt, render_table
from repro.core import block_mapping, prepare
from repro.machine import MachineModel, simulate_schedule
from repro.sparse import load

MACHINES = [
    ("shared-memory-like", MachineModel(alpha=0.0, beta=0.0)),
    ("balanced", MachineModel(alpha=20.0, beta=1.0)),
    ("network-bound", MachineModel(alpha=200.0, beta=4.0)),
    ("latency-dominated", MachineModel(alpha=2000.0, beta=1.0)),
]


def main(matrix: str = "LAP30", nprocs: int = 16) -> None:
    prep = prepare(load(matrix), name=matrix)
    schedules = {g: block_mapping(prep, nprocs, grain=g) for g in (4, 25)}

    rows = []
    for mname, model in MACHINES:
        spans = {}
        for g, r in schedules.items():
            tl = simulate_schedule(r.assignment, r.dependencies, prep.updates, model)
            spans[g] = tl.makespan
        winner = min(spans, key=spans.get)
        rows.append(
            [mname, round(spans[4]), round(spans[25]),
             f"g={winner}", f"{max(spans.values()) / min(spans.values()):.2f}x"]
        )
    print(
        render_table(
            ["machine", "makespan g=4", "makespan g=25", "winner", "gap"],
            rows,
            f"Simulated makespan of the block schedule on {matrix}, P={nprocs}",
        )
    )
    print(
        "\nAs communication gets more expensive relative to computation, "
        "the coarse grain (fewer, larger messages; less traffic) closes "
        "the gap on — and eventually beats — the fine grain, exactly the "
        "regime the paper targets."
    )

    # Where the time goes: the fine-grain schedule on the network-bound
    # machine, as a Gantt chart.
    r = schedules[4]
    tl = simulate_schedule(
        r.assignment, r.dependencies, prep.updates, dict(MACHINES)["network-bound"]
    )
    print()
    print(render_gantt(r.assignment, tl, width=64))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "LAP30")
