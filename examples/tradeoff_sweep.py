"""Grain-size trade-off study on any of the paper's test matrices.

Sweeps the grain size g and prints the communication / load-balance
trade-off curve with a small ASCII chart — the continuous version of the
paper's Tables 2-3 (which sample g = 4 and g = 25).

Run:  python examples/tradeoff_sweep.py [MATRIX] [NPROCS]
      python examples/tradeoff_sweep.py CANN1072 32
"""

import sys

from repro import block_mapping, load, prepare
from repro.analysis import render_table


def bar(value: float, maximum: float, width: int = 30) -> str:
    n = 0 if maximum == 0 else round(width * value / maximum)
    return "#" * n


def main(matrix: str = "LSHP1009", nprocs: int = 16) -> None:
    prep = prepare(load(matrix), name=matrix)
    grains = (1, 2, 4, 8, 16, 25, 50, 100, 200)
    results = [(g, block_mapping(prep, nprocs, grain=g)) for g in grains]

    max_traffic = max(r.traffic.total for _, r in results)
    max_lam = max(r.balance.imbalance for _, r in results)
    rows = [
        [
            g,
            r.partition.num_units,
            r.traffic.total,
            bar(r.traffic.total, max_traffic, 20),
            round(r.balance.imbalance, 2),
            bar(r.balance.imbalance, max_lam, 20),
        ]
        for g, r in results
    ]
    print(
        render_table(
            ["grain", "units", "traffic", "traffic bar", "lambda", "lambda bar"],
            rows,
            f"Communication vs load balance on {matrix}, P={nprocs}",
        )
    )
    best_traffic = min(results, key=lambda t: t[1].traffic.total)
    best_balance = min(results, key=lambda t: t[1].balance.imbalance)
    print(
        f"\nlowest traffic at g={best_traffic[0]}, "
        f"best balance at g={best_balance[0]} — pick per machine "
        "(communication-dominated machines favour large grains)."
    )


if __name__ == "__main__":
    args = sys.argv[1:]
    main(
        args[0] if args else "LSHP1009",
        int(args[1]) if len(args) > 1 else 16,
    )
