"""Solve a sparse SPD system on the simulated message-passing machine.

Runs the complete four-step pipeline of the paper's §2 — MMD ordering,
symbolic factorization, distributed fan-out numerical factorization and
distributed triangular solves — on the thread-based message-passing
runtime, and reports the real message counts per mapping.

Run:  python examples/distributed_solve.py [NPROCS]
"""

import sys

import numpy as np

from repro.analysis import render_table
from repro.core import block_mapping, prepare
from repro.mpsim import distributed_cholesky, distributed_solve_spd
from repro.sparse import load, spd_from_graph


def main(nprocs: int = 4) -> None:
    # A structural test matrix with synthetic SPD values.
    graph = load("DWT512")
    prep = prepare(graph, ordering="mmd", name="DWT512")
    a = spd_from_graph(graph, seed=0).permute(prep.perm)
    pattern = prep.pattern
    print(f"DWT512: n={a.n}, nnz(L)={pattern.nnz}, ranks={nprocs}")

    # Column ownership: wrap, and the block scheduler's diagonal owners.
    mappings = {
        "wrap": np.arange(a.n) % nprocs,
        "block(g=25)": block_mapping(prep, nprocs, grain=25)
        .assignment.owner_of_element[pattern.indptr[:-1]],
    }

    rows = []
    for name, proc_of_col in mappings.items():
        L, stats = distributed_cholesky(a, pattern, proc_of_col, nprocs, timeout=300.0)
        msgs = sum(s.messages_sent for s in stats)
        nbytes = sum(s.bytes_sent for s in stats)
        rows.append([name, msgs, nbytes])
    print()
    print(
        render_table(
            ["column mapping", "messages", "bytes"],
            rows,
            "Fan-out factorization message traffic by mapping",
        )
    )

    # Full distributed solve, verified against the residual.
    b = np.ones(a.n)
    x = distributed_solve_spd(a, b, pattern, mappings["wrap"], nprocs, timeout=300.0)
    residual = np.abs(a.matvec(x) - b).max()
    print(f"\ndistributed solve residual: {residual:.2e}")
    assert residual < 1e-8


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
