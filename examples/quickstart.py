"""Quickstart: partition, schedule and measure a sparse factorization.

Reproduces the paper's core comparison on LAP30 (the 9-point Laplacian
on a 30x30 grid): the block-based partitioner/scheduler versus the
wrap-mapped column assignment, measured in data traffic and load
imbalance.

Run:  python examples/quickstart.py
"""

from repro import block_mapping, load, prepare, wrap_mapping
from repro.analysis import render_table


def main() -> None:
    # 1. Build the test structure and run ordering + symbolic
    #    factorization once (shared by every mapping below).
    graph = load("LAP30")
    prep = prepare(graph, ordering="mmd", name="LAP30")
    print(
        f"LAP30: n={graph.n}, nnz(A)={graph.nnz_lower}, "
        f"nnz(L)={prep.factor_nnz}, total work={prep.total_work}"
    )

    # 2. Sweep both schemes over processor counts.
    rows = []
    for nprocs in (4, 16, 32):
        blk = block_mapping(prep, nprocs, grain=25, min_width=4)
        wrp = wrap_mapping(prep, nprocs)
        rows.append(
            [
                nprocs,
                blk.traffic.total,
                wrp.traffic.total,
                f"{100 * (1 - blk.traffic.total / wrp.traffic.total):.0f}%",
                round(blk.balance.imbalance, 2),
                round(wrp.balance.imbalance, 2),
            ]
        )
    print()
    print(
        render_table(
            ["P", "block traffic", "wrap traffic", "saving",
             "block lambda", "wrap lambda"],
            rows,
            "Block (g=25) vs wrap mapping on LAP30 — the paper's trade-off",
        )
    )
    print(
        "\nThe block scheme cuts communication sharply; the wrap scheme "
        "keeps the load near-perfectly balanced."
    )


if __name__ == "__main__":
    main()
