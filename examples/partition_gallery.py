"""Visual tour of the partitioner on a small finite-element problem.

Prints, for a 7x7 5-point grid: the MMD fill pattern (paper Fig. 2), the
clusters found, the unit-block partition of the widest cluster (paper
Fig. 3), and the dependency-category census (paper Fig. 4).

Run:  python examples/partition_gallery.py
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.figures import figure2_ascii
from repro.core import (
    CATEGORY_NAMES,
    analyze_dependencies,
    classify_pair_updates,
    partition_factor,
    prepare,
)
from repro.sparse import grid5


def main() -> None:
    print(figure2_ascii(7, 7))
    print()

    prep = prepare(grid5(7, 7), name="grid5(7,7)")
    partition = partition_factor(prep.pattern, grain=4, min_width=3)
    widest = max(partition.clusters, key=lambda c: c.width)
    print(
        f"widest cluster: cols [{widest.col_lo}, {widest.col_hi}] with "
        f"{len(widest.rectangles)} dense rectangle(s) below its triangle"
    )
    units = partition.units_of_cluster(widest.index)
    rows = [
        [u.uid, u.kind.value, f"[{u.row_lo},{u.row_hi}]",
         f"[{u.col_lo},{u.col_hi}]", u.nnz]
        for u in units
    ]
    print()
    print(render_table(["uid", "kind", "rows", "cols", "nnz"], rows,
                       "Unit blocks of the widest cluster"))

    cats = classify_pair_updates(partition, prep.updates)
    vals, counts = np.unique(cats, return_counts=True)
    print()
    print(
        render_table(
            ["category", "description", "updates"],
            [[int(v), CATEGORY_NAMES[int(v)], int(c)]
             for v, c in zip(vals, counts)],
            "Dependency categories in this factorization",
        )
    )
    deps = analyze_dependencies(partition, prep.updates)
    print(
        f"\n{partition.num_units} unit blocks, {deps.num_edges()} "
        f"dependency edges, {int(deps.independent_units.sum())} independent units"
    )


if __name__ == "__main__":
    main()
