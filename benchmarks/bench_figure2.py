"""Figure 2 — the filled matrix of an MMD-ordered 5-point grid."""

import pytest

from repro.analysis import figure2_ascii
from repro.core import prepare
from repro.sparse import grid5


def test_report_figure2(benchmark, write_result):
    out = benchmark.pedantic(lambda: figure2_ascii(5, 5), rounds=1, iterations=1)
    write_result("figure2.txt", out)
    assert "fill=" in out


def test_bench_figure2_pipeline(benchmark):
    graph = grid5(8, 8)
    prep = benchmark(lambda: prepare(graph))
    assert prep.factor_nnz > graph.nnz_lower
