"""Ablation — dependency-delay simulation (the effect the paper leaves out).

Checks the paper's argument that with many more schedulable units than
processors, dependency delays keep idle time small; and shows how a
communication-dominated machine flips the block-vs-wrap comparison.
"""

import pytest

from repro.analysis import render_table
from repro.core import block_mapping
from repro.machine import MachineModel, simulate_schedule

MODELS = {
    "free-comm": MachineModel(alpha=0.0, beta=0.0),
    "cheap-comm": MachineModel(alpha=10.0, beta=0.5),
    "costly-comm": MachineModel(alpha=200.0, beta=4.0),
}


def test_report_delay_simulation(benchmark, lap30, write_result):
    def run():
        rows = []
        for g in (4, 25):
            r = block_mapping(lap30, 16, grain=g)
            for mname, model in MODELS.items():
                tl = simulate_schedule(
                    r.assignment, r.dependencies, lap30.updates, model
                )
                rows.append(
                    [g, mname, round(tl.makespan), round(tl.idle_fraction, 3),
                     round(lap30.total_work / tl.makespan, 2)]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_delays.txt",
        render_table(
            ["grain", "machine", "makespan", "idle frac", "speedup"],
            rows,
            "Ablation: event-driven schedule with dependency delays "
            "(LAP30, P=16)",
        ),
    )
    # Paper's claim holds in speedup terms: with free communication and
    # the fine grain, the schedule extracts real parallelism at P=16
    # (the elimination-tree critical path caps it below P).
    free_g4 = next(r for r in rows if r[0] == 4 and r[1] == "free-comm")
    assert free_g4[4] > 4.0
    # On a costly-communication machine the coarse grain gains ground:
    # the g=25 / g=4 makespan ratio must improve versus free comm.
    def ratio(machine):
        m4 = next(r[2] for r in rows if r[0] == 4 and r[1] == machine)
        m25 = next(r[2] for r in rows if r[0] == 25 and r[1] == machine)
        return m25 / m4

    assert ratio("costly-comm") < ratio("free-comm") * 1.5


def test_bench_simulation(benchmark, lap30):
    r = block_mapping(lap30, 16, grain=4)
    tl = benchmark(
        lambda: simulate_schedule(
            r.assignment, r.dependencies, lap30.updates, MODELS["cheap-comm"]
        )
    )
    assert tl.makespan > 0
