"""Ablation — where the §3.4 scheduler sits between pure load balance
(LPT) and pure data affinity.

The paper's conclusion invites "more sophisticated scheduling
strategies"; this bench shows the §3.4 strategy already navigates
between the two extremes of the design space on the same partition.
"""

import pytest

from repro.analysis import render_table
from repro.core import block_mapping, schedule_affinity, schedule_lpt
from repro.machine import data_traffic, load_balance, processor_work, unit_work


def test_report_scheduler_extremes(benchmark, lap30, write_result):
    def run():
        rows = []
        for p in (16, 32):
            r = block_mapping(lap30, p, grain=25)
            uw = unit_work(r.partition, lap30.updates)
            variants = {
                "paper §3.4": r.assignment,
                "LPT (pure balance)": schedule_lpt(r.partition, p, uw),
                "affinity (pure locality)": schedule_affinity(
                    r.partition, r.dependencies, p, lap30.updates, uw
                ),
            }
            for name, a in variants.items():
                t = data_traffic(a, lap30.updates)
                lb = load_balance(processor_work(a, lap30.updates))
                rows.append([p, name, t.total, round(lb.imbalance, 3)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_schedulers.txt",
        render_table(
            ["P", "scheduler", "traffic total", "lambda"],
            rows,
            "Ablation: §3.4 vs the scheduling extremes (LAP30, g=25)",
        ),
    )
    for p in (16, 32):
        cells = {r[1]: r for r in rows if r[0] == p}
        assert (
            cells["affinity (pure locality)"][2]
            <= cells["paper §3.4"][2]
            <= cells["LPT (pure balance)"][2]
        )
        assert (
            cells["LPT (pure balance)"][3]
            <= cells["paper §3.4"][3]
            <= cells["affinity (pure locality)"][3]
        )


def test_bench_lpt(benchmark, lap30):
    r = block_mapping(lap30, 16, grain=25)
    uw = unit_work(r.partition, lap30.updates)
    a = benchmark(lambda: schedule_lpt(r.partition, 16, uw))
    assert a.nprocs == 16


def test_bench_affinity(benchmark, lap30):
    r = block_mapping(lap30, 16, grain=25)
    a = benchmark(
        lambda: schedule_affinity(
            r.partition, r.dependencies, 16, lap30.updates
        )
    )
    assert a.nprocs == 16
