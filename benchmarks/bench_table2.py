"""Table 2 — block mapping communication (total & mean data traffic).

Sweeps g in {4, 25} x P in {4, 16, 32} over the five test matrices,
prints the table next to the paper's numbers, and benchmarks the block
mapping pipeline at representative cells.
"""

import pytest

from repro.analysis import paper_data, render_table2, table2_rows
from repro.analysis.experiments import prepared_matrix
from repro.core import block_mapping


def test_report_table2(benchmark, write_result):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    write_result("table2.txt", render_table2())
    for r in rows:
        # Traffic grows with processor count within each matrix/grain.
        assert r["total_g4"] > 0 and r["total_g25"] > 0
    # Shape: larger grain reduces traffic at P >= 16 for the mesh problems.
    for name in ("LAP30", "LSHP1009", "CANN1072"):
        for p in (16, 32):
            row = next(
                x for x in rows if x["matrix"] == name and x["nprocs"] == p
            )
            assert row["total_g25"] < row["total_g4"]


@pytest.mark.parametrize("grain", [4, 25])
@pytest.mark.parametrize("nprocs", [4, 16, 32])
def test_bench_block_mapping_lap30(benchmark, lap30, grain, nprocs):
    result = benchmark(lambda: block_mapping(lap30, nprocs, grain=grain))
    assert result.traffic.total > 0


def test_bench_block_mapping_cann(benchmark):
    prep = prepared_matrix("CANN1072")
    result = benchmark(lambda: block_mapping(prep, 32, grain=25))
    assert result.traffic.total > 0
