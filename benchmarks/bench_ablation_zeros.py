"""Ablation — zero tolerance in cluster formation.

The paper admits "small regions that correspond to zeros" into dense
blocks to obtain larger clusters.  This bench sweeps the tolerance and
reports cluster count, padding, traffic and balance.
"""

import pytest

from repro.analysis import render_table
from repro.core import block_mapping

TOLERANCES = (0.0, 0.05, 0.15, 0.3)


def test_report_zero_tolerance(benchmark, lap30, write_result):
    def run():
        rows = []
        for tol in TOLERANCES:
            r = block_mapping(lap30, 16, grain=4, zero_tolerance=tol)
            multi = [c for c in r.partition.clusters if not c.is_column]
            rows.append(
                [
                    tol,
                    len(r.partition.clusters),
                    len(multi),
                    r.partition.clusters.total_triangle_padding(),
                    r.partition.clusters.total_padding(),
                    r.traffic.total,
                    r.balance.imbalance,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_zeros.txt",
        render_table(
            ["tolerance", "clusters", "multi-col", "tri padding",
             "total padding", "traffic total", "lambda"],
            rows,
            "Ablation: cluster zero-tolerance (LAP30, P=16, g=4)",
        ),
    )
    # Strict tolerance admits no zeros into the triangles; a looser one
    # merges strips (no more clusters) at the cost of padding.
    assert rows[0][3] == 0
    assert rows[-1][1] <= rows[0][1]
    assert rows[-1][3] >= rows[0][3]
    assert rows[-1][4] >= rows[0][4]


@pytest.mark.parametrize("tol", [0.0, 0.3])
def test_bench_zero_tolerance(benchmark, lap30, tol):
    r = benchmark(lambda: block_mapping(lap30, 16, grain=4, zero_tolerance=tol))
    assert r.balance.total == lap30.total_work
