"""Table 5 — wrap mapping (traffic, mean work, λ) for P in {1, 4, 16, 32}."""

import pytest

from repro.analysis import render_table5, table5_rows
from repro.core import wrap_mapping


def test_report_table5(benchmark, write_result):
    rows = benchmark.pedantic(table5_rows, rounds=1, iterations=1)
    write_result("table5.txt", render_table5())
    for r in rows:
        if r["nprocs"] == 1:
            assert r["total"] == 0
            assert r["imbalance"] == 0.0
        else:
            # The wrap mapping balances well everywhere (paper's headline).
            assert r["imbalance"] < 0.6


@pytest.mark.parametrize("nprocs", [1, 4, 16, 32])
def test_bench_wrap_mapping_lap30(benchmark, lap30, nprocs):
    r = benchmark(lambda: wrap_mapping(lap30, nprocs))
    assert r.balance.total == lap30.total_work
