"""Figure 4 — occurrence of the ten dependency categories."""

import pytest

from repro.analysis import figure4_report
from repro.core import analyze_dependencies, partition_factor


def test_report_figure4(benchmark, write_result):
    out = benchmark.pedantic(
        lambda: figure4_report("LAP30", grain=25), rounds=1, iterations=1
    )
    write_result("figure4.txt", out)
    assert "two rectangles update a rectangle" in out


def test_bench_dependency_analysis(benchmark, lap30):
    part = partition_factor(lap30.pattern, grain=25, min_width=4)
    deps = benchmark(lambda: analyze_dependencies(part, lap30.updates))
    assert deps.num_edges() > 0
