"""Scaling study — the LAP family (9-point Laplacians) at growing order.

Beyond the paper's fixed LAP30: how do traffic, λ and the block scheme's
saving over wrap scale with problem size at fixed P and grain?
"""

import pytest

from repro.analysis import render_table
from repro.core import block_mapping, prepare, wrap_mapping
from repro.sparse import grid9

SIZES = (10, 20, 30, 40)


def test_report_scaling(benchmark, write_result):
    def run():
        rows = []
        for m in SIZES:
            prep = prepare(grid9(m, m), name=f"LAP{m}")
            blk = block_mapping(prep, 16, grain=25)
            wrp = wrap_mapping(prep, 16)
            saving = 1 - blk.traffic.total / wrp.traffic.total
            rows.append(
                [f"LAP{m}", m * m, prep.factor_nnz,
                 blk.traffic.total, wrp.traffic.total,
                 f"{100 * saving:.0f}%",
                 round(blk.balance.imbalance, 2),
                 round(wrp.balance.imbalance, 2)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "scaling.txt",
        render_table(
            ["problem", "n", "nnz(L)", "block traffic", "wrap traffic",
             "saving", "block lambda", "wrap lambda"],
            rows,
            "Scaling of the block-vs-wrap trade-off (9-point Laplacians, "
            "P=16, g=25)",
        ),
    )
    # The block saving must persist (not vanish) as the problem grows.
    savings = [float(r[5].rstrip("%")) for r in rows[1:]]
    assert all(s > 20 for s in savings)


@pytest.mark.parametrize("m", [20, 40])
def test_bench_scaling_pipeline(benchmark, m):
    graph = grid9(m, m)

    def run():
        prep = prepare(graph, name=f"LAP{m}")
        return block_mapping(prep, 16, grain=25)

    r = benchmark.pedantic(run, rounds=2, iterations=1)
    assert r.traffic.total > 0
