"""Benchmark of the real message-passing execution (fan-out Cholesky)
on the simulated runtime — correlates real message counts with the
machine-model traffic accounting."""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import wrap_mapping
from repro.mpsim import distributed_cholesky
from repro.numeric import sparse_cholesky
from repro.ordering import multiple_minimum_degree
from repro.sparse import load, spd_from_graph
from repro.symbolic import symbolic_cholesky


@pytest.fixture(scope="module")
def dwt_system():
    g = load("DWT512")
    perm = multiple_minimum_degree(g)
    a = spd_from_graph(g, seed=17).permute(perm)
    sym = symbolic_cholesky(a.graph())
    return a, sym


def test_report_message_counts(benchmark, dwt_system, write_result):
    a, sym = dwt_system
    from repro.analysis.experiments import prepared_matrix
    from repro.mpsim import distributed_cholesky_fanin

    prep = prepared_matrix("DWT512")

    def run():
        rows = []
        for p in (2, 4, 8):
            proc_of_col = np.arange(a.n) % p
            _, stats = distributed_cholesky(
                a, sym.pattern, proc_of_col, p, timeout=120.0
            )
            _, stats_in = distributed_cholesky_fanin(
                a, sym.pattern, proc_of_col, p, timeout=120.0
            )
            msgs = sum(s.messages_sent for s in stats)
            msgs_in = sum(s.messages_sent for s in stats_in)
            nbytes = sum(s.bytes_sent for s in stats)
            model = wrap_mapping(prep, p).traffic.total
            rows.append([p, msgs, msgs_in, nbytes, model])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "distributed_messages.txt",
        render_table(
            ["P", "fan-out msgs", "fan-in msgs", "fan-out bytes",
             "model traffic (elements)"],
            rows,
            "Distributed Cholesky on mpsim vs machine-model traffic "
            "(DWT512, wrap)",
        ),
    )
    msgs = [r[1] for r in rows]
    model = [r[4] for r in rows]
    assert msgs == sorted(msgs)
    assert model == sorted(model)
    for r in rows:
        assert r[2] <= r[1]  # fan-in aggregates into fewer messages


@pytest.mark.parametrize("nprocs", [2, 4])
def test_bench_distributed_cholesky(benchmark, dwt_system, nprocs):
    a, sym = dwt_system
    Lref = sparse_cholesky(a, sym)
    proc_of_col = np.arange(a.n) % nprocs

    def run():
        L, _ = distributed_cholesky(a, sym.pattern, proc_of_col, nprocs, timeout=120.0)
        return L

    L = benchmark.pedantic(run, rounds=2, iterations=1)
    assert np.allclose(L.values, Lref.values, atol=1e-10)
