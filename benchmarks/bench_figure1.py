"""Figure 1 — the element-level dependency diagram, plus a benchmark of
the update enumeration that materializes it."""

import pytest

from repro.analysis import figure1_ascii
from repro.symbolic import enumerate_updates


def test_report_figure1(benchmark, write_result):
    out = benchmark.pedantic(figure1_ascii, rounds=1, iterations=1)
    write_result("figure1.txt", out)
    assert "T = target element" in out


def test_bench_enumerate_updates_lap30(benchmark, lap30):
    ups = benchmark(lambda: enumerate_updates(lap30.pattern))
    assert ups.total_work() == lap30.total_work
