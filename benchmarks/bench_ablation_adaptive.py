"""Ablation — static vs adaptive partitioning (§3.2 parameter (a)).

The paper's reported runs fix the grain size; parameter (a) additionally
limits each triangle's partition count by the number of processors its
predecessors landed on.  This bench compares both modes.
"""

import pytest

from repro.analysis import render_table
from repro.core import adaptive_block_mapping, block_mapping


def test_report_adaptive(benchmark, lap30, dwt512, write_result):
    def run():
        rows = []
        for name, prep in (("LAP30", lap30), ("DWT512", dwt512)):
            for p in (4, 16, 32):
                s = block_mapping(prep, p, grain=4)
                a = adaptive_block_mapping(prep, p, grain=4)
                rows.append(
                    [
                        name, p,
                        s.partition.num_units, a.partition.num_units,
                        s.traffic.total, a.traffic.total,
                        round(s.balance.imbalance, 2),
                        round(a.balance.imbalance, 2),
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_adaptive.txt",
        render_table(
            ["matrix", "P", "units static", "units adaptive",
             "traffic static", "traffic adaptive",
             "lambda static", "lambda adaptive"],
            rows,
            "Ablation: static grain-only vs adaptive partitioning (g=4)",
        ),
    )
    for r in rows:
        assert r[3] <= r[2]  # parameter (a) never adds units
    # On LAP30 the predecessor cap buys a traffic reduction at scale.
    lap32 = next(r for r in rows if r[0] == "LAP30" and r[1] == 32)
    assert lap32[5] < lap32[4]


@pytest.mark.parametrize("nprocs", [4, 32])
def test_bench_adaptive(benchmark, lap30, nprocs):
    r = benchmark(lambda: adaptive_block_mapping(lap30, nprocs, grain=4))
    assert r.balance.total == lap30.total_work
