"""Table 1 — the test matrices: n, nnz(A), nnz(L) under MMD.

Regenerates the paper's Table 1 side by side with the measured values,
and benchmarks the prepare stage (MMD ordering + symbolic factorization)
for each matrix.
"""

import pytest

from repro.analysis import render_table1, table1_rows
from repro.core import prepare
from repro.sparse import load, names


def test_report_table1(benchmark, write_result):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    write_result("table1.txt", render_table1())
    for r in rows:
        assert r["n"] == r["paper_n"]
        assert abs(r["factor_nnz"] - r["paper_factor_nnz"]) <= 0.2 * r["paper_factor_nnz"]


@pytest.mark.parametrize("name", names())
def test_bench_prepare(benchmark, name):
    graph = load(name)
    prep = benchmark(lambda: prepare(graph, name=name))
    assert prep.factor_nnz >= graph.nnz_lower
