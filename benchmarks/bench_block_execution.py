"""Real execution of the block schedule: messages vs model traffic.

Runs the partitioner/scheduler output as an owner-computes dataflow
program on the message-passing runtime and compares the real message and
byte counts across grain sizes with the machine model's element-traffic
figures — the communication side of Tables 2/3, observed live.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import block_mapping, prepare
from repro.mpsim import distributed_block_cholesky
from repro.numeric import sparse_cholesky
from repro.sparse import load, spd_from_graph


@pytest.fixture(scope="module")
def lap():
    g = load("LAP30")
    prep = prepare(g, name="LAP30")
    a = spd_from_graph(g, seed=33).permute(prep.perm)
    Lref = sparse_cholesky(a, prep.symbolic)
    return prep, a, Lref


def test_report_block_execution(benchmark, lap, write_result):
    prep, a, Lref = lap

    def run():
        rows = []
        for grain in (4, 25, 100):
            r = block_mapping(prep, 4, grain=grain)
            L, stats = distributed_block_cholesky(
                a, r.partition, r.assignment, prep.updates, r.dependencies,
                timeout=180.0,
            )
            assert np.allclose(L.values, Lref.values, atol=1e-10)
            rows.append(
                [
                    grain,
                    r.partition.num_units,
                    sum(s.messages_sent for s in stats),
                    sum(s.bytes_sent for s in stats),
                    r.traffic.total,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "block_execution.txt",
        render_table(
            ["grain", "units", "real messages", "real bytes",
             "model traffic (elements)"],
            rows,
            "Block schedule executed on mpsim (LAP30, P=4) — verified "
            "against the sequential factor",
        ),
    )
    msgs = [r[2] for r in rows]
    assert msgs == sorted(msgs, reverse=True)  # coarser -> fewer messages


def test_bench_block_execution(benchmark, lap):
    prep, a, Lref = lap
    r = block_mapping(prep, 4, grain=25)

    def run():
        L, _ = distributed_block_cholesky(
            a, r.partition, r.assignment, prep.updates, r.dependencies,
            timeout=180.0,
        )
        return L

    L = benchmark.pedantic(run, rounds=2, iterations=1)
    assert np.allclose(L.values, Lref.values, atol=1e-10)
