"""Ablation — dependent-column placement policy.

The paper allocates a dependent column to a processor "arbitrarily
picked" from its predecessors' processors.  This bench compares the
three policies exposed by the scheduler on traffic and balance.
"""

import pytest

from repro.analysis import render_table
from repro.core import SchedulerOptions, block_mapping

POLICIES = ("first", "least_loaded", "round_robin")


def test_report_policy_ablation(benchmark, lap30, dwt512, write_result):
    def run():
        rows = []
        for name, prep in (("LAP30", lap30), ("DWT512", dwt512)):
            for policy in POLICIES:
                r = block_mapping(
                    prep, 16, grain=4, options=SchedulerOptions(policy)
                )
                rows.append(
                    [name, policy, r.traffic.total, r.balance.imbalance]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_policy.txt",
        render_table(
            ["matrix", "policy", "traffic total", "lambda"],
            rows,
            "Ablation: dependent-column placement policy (P=16, g=4)",
        ),
    )
    # All policies must be valid schedules conserving work.
    for name_rows in (rows[:3], rows[3:]):
        assert len({r[0] for r in name_rows}) == 1


@pytest.mark.parametrize("policy", POLICIES)
def test_bench_policy(benchmark, lap30, policy):
    r = benchmark(
        lambda: block_mapping(lap30, 16, grain=4, options=SchedulerOptions(policy))
    )
    assert r.balance.total == lap30.total_work
