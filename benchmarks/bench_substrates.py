"""Performance benchmarks of the substrate stages on the paper matrices.

Not a paper table — a performance-regression harness for the pipeline
stages: ordering, symbolic factorization, update enumeration,
partitioning and dependency analysis.
"""

import pytest

from repro.core import analyze_dependencies, partition_factor
from repro.ordering import (
    approximate_minimum_degree,
    multiple_minimum_degree,
    reverse_cuthill_mckee,
)
from repro.sparse import load, names
from repro.symbolic import enumerate_updates, symbolic_cholesky


@pytest.fixture(scope="module", params=["LAP30", "CANN1072"])
def matrix(request):
    return request.param, load(request.param)


def test_bench_mmd(benchmark, matrix):
    name, g = matrix
    perm = benchmark(lambda: multiple_minimum_degree(g))
    assert len(perm) == g.n


def test_bench_amd(benchmark, matrix):
    name, g = matrix
    perm = benchmark(lambda: approximate_minimum_degree(g))
    assert len(perm) == g.n


def test_bench_rcm(benchmark, matrix):
    name, g = matrix
    perm = benchmark(lambda: reverse_cuthill_mckee(g))
    assert len(perm) == g.n


def test_bench_symbolic(benchmark, matrix):
    name, g = matrix
    perm = multiple_minimum_degree(g)
    f = benchmark(lambda: symbolic_cholesky(g, perm))
    assert f.nnz >= g.nnz_lower


def test_bench_enumerate_updates(benchmark, matrix):
    name, g = matrix
    pattern = symbolic_cholesky(g, multiple_minimum_degree(g)).pattern
    ups = benchmark(lambda: enumerate_updates(pattern))
    assert ups.num_pair_updates > 0


def test_bench_partition(benchmark, matrix):
    name, g = matrix
    pattern = symbolic_cholesky(g, multiple_minimum_degree(g)).pattern
    part = benchmark(lambda: partition_factor(pattern, grain=4, min_width=4))
    assert part.num_units > 0


def test_bench_dependencies(benchmark, matrix):
    name, g = matrix
    pattern = symbolic_cholesky(g, multiple_minimum_degree(g)).pattern
    part = partition_factor(pattern, grain=4, min_width=4)
    ups = enumerate_updates(pattern)
    deps = benchmark(lambda: analyze_dependencies(part, ups))
    assert deps.num_edges() > 0
