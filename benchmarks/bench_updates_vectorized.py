"""Vectorized vs reference update enumeration on generator matrices.

The band matrix is the largest generator problem in the suite and the
regime the vectorized kernel targets: many columns of moderate degree,
where the reference's per-column Python loop dominates.  The HB-scale
matrices (heavily filled, tens of millions of pairs) are
memory-bandwidth-bound instead — both kernels converge there — so the
band problem is what the >= 5x acceptance test (tests/perf/test_speedup)
measures.
"""

import pytest

from repro.sparse import band_lower_pattern, grid9
from repro.symbolic import (
    enumerate_updates,
    enumerate_updates_reference,
    symbolic_cholesky,
)

#: Largest generator matrix in the benchmarks; the speedup acceptance
#: test measures exactly this problem (keep the two in sync).
BAND_N, BAND_W = 4500, 32


@pytest.fixture(scope="module")
def band_pattern():
    return band_lower_pattern(BAND_N, BAND_W)


@pytest.fixture(scope="module")
def grid_pattern():
    return symbolic_cholesky(grid9(40, 40)).pattern


def test_bench_vectorized_band(benchmark, band_pattern):
    ups = benchmark(lambda: enumerate_updates(band_pattern))
    assert ups.num_pair_updates > 1_000_000


def test_bench_reference_band(benchmark, band_pattern):
    ups = benchmark.pedantic(
        lambda: enumerate_updates_reference(band_pattern), rounds=3, iterations=1
    )
    assert ups.num_pair_updates > 1_000_000


def test_bench_vectorized_grid(benchmark, grid_pattern):
    ups = benchmark(lambda: enumerate_updates(grid_pattern))
    assert ups.num_pair_updates > 0


def test_bench_reference_grid(benchmark, grid_pattern):
    ups = benchmark.pedantic(
        lambda: enumerate_updates_reference(grid_pattern), rounds=3, iterations=1
    )
    assert ups.num_pair_updates > 0
