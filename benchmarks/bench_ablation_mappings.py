"""Ablation — column-mapping family: wrap vs block-cyclic vs block scheme.

Extends Table 5 with block-cyclic column mappings (the natural
interpolation between wrap and blocked columns) to show where the
paper's block-based scheme sits.
"""

import pytest

from repro.analysis import render_table
from repro.core import block_cyclic_columns, block_mapping, two_d_cyclic
from repro.machine import data_traffic, load_balance, processor_work


def test_report_mapping_family(benchmark, lap30, write_result):
    def run():
        rows = []
        nprocs = 16
        for block in (1, 2, 4, 8):
            a = block_cyclic_columns(lap30.pattern, nprocs, block)
            t = data_traffic(a, lap30.updates)
            lb = load_balance(processor_work(a, lap30.updates))
            rows.append([a.scheme, t.total, round(t.mean), lb.imbalance])
        a2d = two_d_cyclic(lap30.pattern, 4, 4)
        t2d = data_traffic(a2d, lap30.updates)
        lb2d = load_balance(processor_work(a2d, lap30.updates))
        rows.append([a2d.scheme, t2d.total, round(t2d.mean), lb2d.imbalance])
        for g in (4, 25):
            r = block_mapping(lap30, nprocs, grain=g)
            rows.append(
                [f"block(g={g})", r.traffic.total, round(r.traffic.mean),
                 r.balance.imbalance]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_mappings.txt",
        render_table(
            ["scheme", "traffic total", "traffic mean", "lambda"],
            rows,
            "Ablation: column-mapping family (LAP30, P=16)",
        ),
    )
    wrap_traffic = rows[0][1]
    block25_traffic = next(r[1] for r in rows if r[0] == "block(g=25)")
    assert block25_traffic < wrap_traffic


@pytest.mark.parametrize("block", [1, 4])
def test_bench_block_cyclic(benchmark, lap30, block):
    def run():
        a = block_cyclic_columns(lap30.pattern, 16, block)
        return data_traffic(a, lap30.updates)

    t = benchmark(run)
    assert t.total > 0
