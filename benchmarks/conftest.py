"""Shared benchmark fixtures: prepared matrices and a results sink."""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Persist a rendered table/figure under benchmarks/results/."""

    def _write(name: str, content: str) -> None:
        (results_dir / name).write_text(content + "\n")
        print(f"\n{content}\n")

    return _write


@pytest.fixture(scope="session")
def lap30():
    from repro.analysis.experiments import prepared_matrix

    return prepared_matrix("LAP30")


@pytest.fixture(scope="session")
def dwt512():
    from repro.analysis.experiments import prepared_matrix

    return prepared_matrix("DWT512")
