"""Shared benchmark fixtures: prepared matrices, a results sink, and a
per-benchmark stage-timing recorder (repro.obs).

Every benchmark runs under a fresh :class:`repro.obs.Recorder`; if the
test touched any instrumented stage, its timing/counter summary lands in
``benchmarks/results/stage_timings/<test>.txt`` next to the rendered
tables.  Two environment knobs:

* ``REPRO_TRACE=0`` opts out entirely (e.g. when measuring the
  disabled-mode overhead of the tracing layer itself);
* ``REPRO_TRACE_OUT=<dir>`` additionally writes each benchmark's full
  Chrome trace to ``<dir>/<test>.json`` — the same variable the CLI
  reads as its ``--trace-out`` default (a file path there; a directory
  here, since one pytest session produces many traces).
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
STAGE_TIMINGS_DIR = RESULTS_DIR / "stage_timings"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Persist a rendered table/figure under benchmarks/results/."""

    def _write(name: str, content: str) -> None:
        (results_dir / name).write_text(content + "\n")
        print(f"\n{content}\n")

    return _write


@pytest.fixture(autouse=True)
def record_stage_timings(request):
    """Trace each benchmark and write its per-stage summary to
    benchmarks/results/stage_timings/."""
    if os.environ.get("REPRO_TRACE", "1") == "0":
        yield
        return
    from repro import obs

    with obs.enabled(obs.Recorder()) as rec:
        yield
    if rec.is_empty():
        return
    STAGE_TIMINGS_DIR.mkdir(parents=True, exist_ok=True)
    name = re.sub(r"[^A-Za-z0-9._-]+", "-", request.node.name).strip("-")
    (STAGE_TIMINGS_DIR / f"{name}.txt").write_text(obs.summary_table(rec) + "\n")
    trace_dir = os.environ.get("REPRO_TRACE_OUT")
    if trace_dir:
        out = Path(trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        obs.write_chrome_trace(rec, out / f"{name}.json")


@pytest.fixture(scope="session")
def lap30():
    from repro.analysis.experiments import prepared_matrix

    return prepared_matrix("LAP30")


@pytest.fixture(scope="session")
def dwt512():
    from repro.analysis.experiments import prepared_matrix

    return prepared_matrix("DWT512")
