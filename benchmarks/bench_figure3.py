"""Figure 3 — a cluster partitioned into unit blocks."""

import pytest

from repro.analysis import figure3_ascii
from repro.core import partition_factor


def test_report_figure3(benchmark, write_result):
    out = benchmark.pedantic(figure3_ascii, rounds=1, iterations=1)
    write_result("figure3.txt", out)
    assert "triangle" in out and "rectangle" in out


def test_bench_partition_lap30(benchmark, lap30):
    part = benchmark(lambda: partition_factor(lap30.pattern, grain=4, min_width=4))
    assert part.num_units > 0
