"""Ablation — effect of the fill-reducing ordering on the trade-off.

The paper fixes Liu's MMD.  This bench swaps the ordering (natural, RCM,
MD, MMD, AMD, ND) and measures factor size, block-scheme traffic and λ,
showing how much of the result depends on the ordering versus the
mapping scheme.
"""

import pytest

from repro.analysis import render_table
from repro.core import block_mapping, prepare
from repro.sparse import load

ORDERINGS = ("natural", "rcm", "md", "mmd", "amd", "nd")


def test_report_ordering_ablation(benchmark, write_result):
    graph = load("DWT512")

    def run():
        rows = []
        for ordering in ORDERINGS:
            prep = prepare(graph, ordering=ordering, name="DWT512")
            r = block_mapping(prep, 16, grain=4)
            rows.append(
                [ordering, prep.factor_nnz, prep.total_work,
                 r.traffic.total, round(r.balance.imbalance, 2)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_ordering.txt",
        render_table(
            ["ordering", "nnz(L)", "total work", "block traffic", "lambda"],
            rows,
            "Ablation: fill-reducing ordering (DWT512, block g=4, P=16)",
        ),
    )
    fills = {r[0]: r[1] for r in rows}
    # The minimum-degree family must beat the natural ordering on fill.
    for md_like in ("md", "mmd", "amd"):
        assert fills[md_like] < fills["natural"]


@pytest.mark.parametrize("ordering", ["mmd", "amd"])
def test_bench_ordering(benchmark, ordering):
    graph = load("DWT512")
    from repro.ordering import order

    perm = benchmark(lambda: order(graph, ordering))
    assert len(perm) == graph.n
