"""Table 3 — block mapping work distribution (mean work and λ).

Same sweep as Table 2; reports the load-imbalance factor for g = 4 and
g = 25 and benchmarks the work-accounting stage.
"""

import pytest

from repro.analysis import render_table3, table3_rows
from repro.core import block_mapping
from repro.machine import load_balance, processor_work


def test_report_table3(benchmark, write_result):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    write_result("table3.txt", render_table3())
    for r in rows:
        assert r["imbalance_g4"] >= 0.0
        assert r["imbalance_g25"] >= 0.0
    # Shape: for the fill-heavy mesh problems at scale, the larger grain
    # worsens balance.
    for name in ("LAP30", "LSHP1009"):
        row = next(
            x for x in rows if x["matrix"] == name and x["nprocs"] == 32
        )
        assert row["imbalance_g25"] > row["imbalance_g4"]


@pytest.mark.parametrize("nprocs", [4, 32])
def test_bench_work_accounting(benchmark, lap30, nprocs):
    r = block_mapping(lap30, nprocs, grain=4)

    def measure():
        return load_balance(processor_work(r.assignment, lap30.updates))

    lb = benchmark(measure)
    assert lb.total == lap30.total_work
