"""Ablation — fine grain-size sweep: the communication / load-balance
trade-off curve the paper's Tables 2-3 sample at g = 4 and g = 25."""

import pytest

from repro.analysis import render_table
from repro.core import block_mapping

GRAINS = (1, 2, 4, 8, 16, 25, 50, 100)


def test_report_grain_sweep(benchmark, lap30, write_result):
    def run():
        rows = []
        for g in GRAINS:
            r = block_mapping(lap30, 16, grain=g)
            rows.append(
                [g, r.partition.num_units, r.traffic.total,
                 round(r.traffic.mean), r.balance.imbalance]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_grain.txt",
        render_table(
            ["grain", "units", "traffic total", "traffic mean", "lambda"],
            rows,
            "Ablation: grain-size sweep (LAP30, P=16)",
        ),
    )
    units = [r[1] for r in rows]
    assert units == sorted(units, reverse=True)  # coarser -> fewer units
    # Trade-off endpoints: coarse grain must cut traffic but cost balance.
    assert rows[-1][2] < rows[0][2]
    assert rows[-1][4] > rows[0][4]


@pytest.mark.parametrize("grain", [1, 100])
def test_bench_grain_extremes(benchmark, lap30, grain):
    r = benchmark(lambda: block_mapping(lap30, 16, grain=grain))
    assert r.balance.total == lap30.total_work
