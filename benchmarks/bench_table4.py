"""Table 4 — LAP30 variation with minimum cluster width (g = 4).

Sweeps width in {2, 4, 8} x P in {4, 16, 32} and benchmarks the cluster
identification stage at each width.
"""

import pytest

from repro.analysis import render_table4, table4_rows
from repro.core import find_clusters


def test_report_table4(benchmark, write_result):
    rows = benchmark.pedantic(table4_rows, rounds=1, iterations=1)
    write_result("table4.txt", render_table4())
    totals = {(r["width"], r["nprocs"]): r["total"] for r in rows}
    # The width sweep must actually change the partitioning.
    assert len({totals[(w, 16)] for w in (2, 4, 8)}) > 1
    # Work mean is width-invariant (total work conserved).
    means = {r["work_mean"] for r in rows if r["nprocs"] == 16}
    assert len(means) == 1


@pytest.mark.parametrize("width", [2, 4, 8])
def test_bench_find_clusters(benchmark, lap30, width):
    cs = benchmark(lambda: find_clusters(lap30.pattern, min_width=width))
    assert len(cs) > 0
