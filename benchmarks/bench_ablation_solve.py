"""Ablation — the triangular-solve phase (paper's conclusion remark).

Quantifies "other computations such as triangular solves can provide
additional flexibility in balancing the load": solve-phase work is
proportional to nnz per processor rather than to the quadratic update
counts, so the two phases have different balance profiles.
"""

import pytest

from repro.analysis import render_table
from repro.core import block_mapping, wrap_mapping
from repro.machine import solve_balance, solve_traffic


def test_report_solve_phase(benchmark, lap30, write_result):
    def run():
        rows = []
        for p in (4, 16, 32):
            blk = block_mapping(lap30, p, grain=25)
            wrp = wrap_mapping(lap30, p)
            for name, r in (("block g=25", blk), ("wrap", wrp)):
                st = solve_traffic(r.assignment)
                sb = solve_balance(r.assignment)
                rows.append(
                    [name, p,
                     r.traffic.total, round(r.balance.imbalance, 2),
                     st.total, round(sb.imbalance, 2)]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_solve.txt",
        render_table(
            ["scheme", "P", "factor traffic", "factor lambda",
             "solve traffic", "solve lambda"],
            rows,
            "Ablation: factorization vs triangular-solve phase (LAP30)",
        ),
    )
    # The block scheme still communicates less in the solve phase.
    for p in (16, 32):
        blk = next(r for r in rows if r[0] == "block g=25" and r[1] == p)
        wrp = next(r for r in rows if r[0] == "wrap" and r[1] == p)
        assert blk[4] < wrp[4]


def test_bench_solve_metrics(benchmark, lap30):
    r = block_mapping(lap30, 16, grain=25)
    t = benchmark(lambda: solve_traffic(r.assignment))
    assert t.total > 0
